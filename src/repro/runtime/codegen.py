"""Codegen backend: optimized graphs lowered to specialized Python.

The threaded-code :class:`~repro.runtime.plan.ExecutionPlan` still pays
one Python-level indirect call per executed node.  This module removes
that last dispatch layer: each compiled graph is *structurized* back
into ``while``/``if`` source text — one generated Python function per
compiled method (or OSR variant) — and ``compile()``/``exec()``-ed, so
CPython's own bytecode specialization runs the hot path.

Lowering rules (see docs/internals.md §13):

- every value node (parameter, phi, value-producing fixed node) becomes
  a real Python local named ``v<node-id>``;
- straight-line fixed nodes become straight-line statements calling the
  shared :class:`~repro.bytecode.heap.Heap` (so Table 1's allocation and
  monitor metrics are measured identically in every backend);
- the reducible CFG is emitted structurally: the explicit
  LoopBegin/LoopEnd/LoopExit nodes become ``while True:`` loops with
  ``continue``/``break``, If joins are discovered by probing both arms
  for the merge they reconverge on, and phi moves are plain (tuple)
  assignments with parallel-move semantics;
- floating expressions are inlined (64-bit wrapping arithmetic as
  walrus-assignment mask formulas, comparisons as native operators);
  subexpressions shared within one tree are hoisted into temporaries,
  preserving the evaluation-count semantics of the interpreter's
  per-evaluation memo;
- per-block cost accounting is pre-folded into single constant
  increments (``stats.node_executions += n`` / ``stats.cycles += x``),
  flushed before every control transfer;
- deopt sites compile to ``return _d<k>(locals())``: the frame state and
  the node→local-name rematerialization map are baked into a bound
  closure that hands the existing
  :class:`~repro.runtime.deopt.Deoptimizer` an evaluator over the
  captured frame locals, so Section 5.5 rematerialization is unchanged.

Graph shapes the structurizer cannot express (irreducible-looking joins
after aggressive branch folding) raise :class:`CodegenError` and the
compiler falls back to the plan backend for that method — observable
metrics are identical by construction, only the speed differs.

A :class:`CodegenPlan` is static (graph + program + cost model); its
:meth:`payload` — the source text, a digest, and the node-id maps — is
what the compilation cache persists (re-``exec`` on warm load).
Binding to one VM's heap/stats/deoptimizer produces a
:class:`BoundCode` whose ``execute`` signature matches
:class:`~repro.runtime.plan.BoundPlan`.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..bytecode.classfile import Program
from ..bytecode.heap import Heap
from ..bytecode.interpreter import (java_div, java_rem, java_shl, java_shr,
                                    wrap_int)
from ..ir.graph import Graph
from ..ir.node import Node
from ..ir.nodes import (ArrayLengthNode, BeginNode, BinaryArithmeticNode,
                        ConditionalNode, ConstantNode, DeoptimizeNode,
                        EndNode, FixedGuardNode, FrameStateNode, IfNode,
                        InstanceOfNode, IntCompareNode, InvokeNode,
                        IsNullNode, LoadFieldNode, LoadIndexedNode,
                        LoadStaticNode, LoopBeginNode, LoopEndNode,
                        LoopExitNode, MergeNode, MonitorEnterNode,
                        MonitorExitNode, NegNode, NewArrayNode,
                        NewInstanceNode, ParameterNode, PhiNode,
                        RefEqualsNode, ReturnNode, StartNode,
                        StoreFieldNode, StoreIndexedNode, StoreStaticNode)
from .costmodel import CostModel, ExecutionStats
from .deopt import Deoptimizer
from .graph_interpreter import MAX_CONTROL_STEPS, GraphExecutionError


class CodegenError(Exception):
    """The graph cannot be lowered to structured Python source (an
    unsupported node kind or an unstructured join).  The compiler falls
    back to the threaded-code plan backend for this method."""


class _Missing:
    __slots__ = ()

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<missing>"


_MISSING = _Missing()

#: Floating node kinds evaluated on demand (mirrors plan._INTERIOR).
_INTERIOR = (BinaryArithmeticNode, IntCompareNode, NegNode,
             ConditionalNode)

#: Arithmetic ops inlined as native operators under the wrap formula.
_PY_ARITH = {"add": "+", "sub": "-", "mul": "*", "and": "&", "or": "|",
             "xor": "^"}
#: Arithmetic ops with Java trap/shift semantics: call the table fns.
_FN_ARITH = {"div": "_dv", "rem": "_rm", "shl": "_sl", "shr": "_sr"}
_PY_CMP = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">",
           "ge": ">="}

_MASK = (1 << 64) - 1
_SIGN = 1 << 63
_SPAN = 1 << 64

#: Subtree render depth above which always-evaluated nodes are hoisted
#: into temporaries (keeps generated lines inside CPython's nesting
#: limits); trees that stay deeper (conditional arms cannot be hoisted
#: without changing trap laziness) bail out to the plan backend.
_HOIST_DEPTH = 12
_MAX_DEPTH = 60

#: Emitted-line ceiling: tail duplication (non-tree merge DAGs) can in
#: principle blow up exponentially; past this the method bails out to
#: the plan backend instead.
_MAX_LINES = 200_000

_HELPERS = (
    ("_c", "stats"), ("_ni", "new_instance"), ("_na", "new_array"),
    ("_gf", "get_field"), ("_pf", "put_field"), ("_al", "array_load"),
    ("_as", "array_store"), ("_ln", "array_length"),
    ("_io", "instance_of"), ("_me", "monitor_enter"),
    ("_mx", "monitor_exit"), ("_gs", "get_static"),
    ("_ss", "set_static"), ("_iv", "invoke"), ("_dv", "java_div"),
    ("_rm", "java_rem"), ("_sl", "java_shl"), ("_sr", "java_shr"),
    ("_abc", "alloc_bytes"), ("_sbc", "stack_bytes"),
    ("_asz", "array_size"), ("_bx", "budget"), ("_hg", "hist_merge"),
)


def _raise_budget():
    raise GraphExecutionError("control step budget exceeded")


def _expr_children(node: Node) -> Tuple[Node, ...]:
    if isinstance(node, (BinaryArithmeticNode, IntCompareNode)):
        return (node.x, node.y)
    if isinstance(node, NegNode):
        return (node.value,)
    return (node.condition, node.true_value, node.false_value)


def _sanitize(label: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_"
                      for ch in label)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"m_{cleaned}"
    return cleaned


class _Loop:
    """One loop being emitted: its header plus the *out-edges* its body
    discovers — control transfers the body cannot express locally (a
    break out of this loop, a ``continue``/break of an *enclosing* loop,
    a jump to a merge beyond this loop).  Each distinct target gets an
    index; the body emits ``_x<id> = <index>; break`` and the dispatch
    after the ``while`` re-emits the target at the enclosing level
    (multi-level transfers propagate out one loop at a time)."""

    __slots__ = ("begin", "targets", "out_index")

    def __init__(self, begin: LoopBeginNode):
        self.begin = begin
        self.targets: List[Node] = []
        self.out_index: Dict[Node, int] = {}


class _Ctx:
    """Structural emission context: the innermost loop and the stack of
    open join merges at this nesting level (innermost last)."""

    __slots__ = ("loop", "joins")

    def __init__(self, loop: Optional[_Loop], joins: tuple):
        self.loop = loop
        self.joins = joins

    @property
    def join(self) -> Optional[MergeNode]:
        return self.joins[-1] if self.joins else None

    def with_join(self, join: MergeNode) -> "_Ctx":
        return _Ctx(self.loop, self.joins + (join,))


class _Emitter:
    """Walks one graph and produces the generated source plus the
    bind-time tables (deopt sites, value-name map, constants)."""

    def __init__(self, graph: Graph, program: Program,
                 cost_model: CostModel, label: str,
                 histogram: bool = False):
        self.graph = graph
        self.program = program
        self.cost_model = cost_model
        self.label = label
        self.histogram = histogram
        self.multiplier = cost_model.icache_multiplier(graph.node_count())
        self.entry_name = _sanitize(label)
        self.lines: List[Tuple[int, str]] = []
        self.indent = 2
        #: leaf value node -> Python local name.
        self.names: Dict[Node, str] = {}
        #: deopt site index -> frame state node.
        self.deopt_states: List[FrameStateNode] = []
        #: bind-time constants: ("target", InvokeNode).
        self.consts: List[Tuple[str, Node]] = []
        self.pending_execs = 0
        self.pending_cycles = 0.0
        self.pending_hist: Dict[str, int] = {}
        self._temp_counter = 0
        self._has_loops = any(isinstance(node, LoopBeginNode)
                              for node in graph.nodes())
        #: MergeNode -> innermost LoopBeginNode whose natural body
        #: contains it (absent -> outside every loop).  Decides whether
        #: an End falling into a merge is local to the loop being
        #: emitted or must become an out-edge.
        self._merge_loop: Dict[MergeNode, LoopBeginNode] = {}
        #: LoopBeginNode -> out-edge targets its body produces
        #: (memoized mirror of emission, used by :meth:`_probe`).
        self._out_cache: Dict[LoopBeginNode, List[Node]] = {}
        self._compute_merge_owners()

    def _compute_merge_owners(self) -> None:
        """Natural-loop membership over the fixed CFG: a node belongs to
        loop L when it reaches one of L's back edges without passing
        through L's header.  The innermost (smallest-body) containing
        loop of every merge decides End locality during emission."""
        preds: Dict[Node, List[Node]] = {}
        seen = set()
        stack: List[Node] = [self.graph.start]
        while stack:
            node = stack.pop()
            if node is None or node in seen:
                continue
            seen.add(node)
            if isinstance(node, IfNode):
                succs = (node.true_successor, node.false_successor)
            elif isinstance(node, EndNode):
                merge = node.merge()
                succs = (merge,) if merge is not None else ()
            elif isinstance(node, LoopEndNode):
                succs = (node.loop_begin,)
            elif isinstance(node, (ReturnNode, DeoptimizeNode)):
                succs = ()
            else:
                nxt = getattr(node, "next", None)
                succs = (nxt,) if nxt is not None else ()
            for succ in succs:
                preds.setdefault(succ, []).append(node)
                stack.append(succ)
        bodies: List[Tuple[LoopBeginNode, set]] = []
        for node in seen:
            if not isinstance(node, LoopBeginNode):
                continue
            body = {node}
            work = [end for end in node.loop_ends if end in seen]
            while work:
                member = work.pop()
                if member in body:
                    continue
                body.add(member)
                work.extend(preds.get(member, ()))
            bodies.append((node, body))
        for node in seen:
            if not isinstance(node, MergeNode) or \
                    isinstance(node, LoopBeginNode):
                continue
            owner = None
            owner_size = None
            for begin, body in bodies:
                if node in body and (owner is None
                                     or len(body) < owner_size):
                    owner = begin
                    owner_size = len(body)
            if owner is not None:
                self._merge_loop[node] = owner

    # -- plumbing ----------------------------------------------------------

    def _line(self, text: str) -> None:
        if len(self.lines) > _MAX_LINES:
            raise CodegenError("generated code too large")
        self.lines.append((self.indent, text))

    def _name(self, node: Node) -> str:
        name = self.names.get(node)
        if name is None:
            name = f"v{node.id}"
            self.names[node] = name
        return name

    def _is_leaf(self, node: Node) -> bool:
        return node.is_fixed or isinstance(node, (ParameterNode, PhiNode))

    def _count(self, node: Node) -> None:
        self.pending_execs += 1
        self.pending_cycles += (self.cost_model.node_cost(node)
                                * self.multiplier)
        if self.histogram:
            kind = type(node).__name__
            self.pending_hist[kind] = self.pending_hist.get(kind, 0) + 1

    def _flush(self) -> None:
        if self.pending_execs:
            self._line(f"_c.node_executions += {self.pending_execs}")
            self.pending_execs = 0
        if self.pending_cycles:
            self._line(f"_c.cycles += {self.pending_cycles!r}")
            self.pending_cycles = 0.0
        if self.pending_hist:
            literal = ", ".join(f"{kind!r}: {count}" for kind, count
                                in sorted(self.pending_hist.items()))
            self._line(f"_hg({{{literal}}})")
            self.pending_hist = {}

    # -- expressions -------------------------------------------------------

    def _const_literal(self, node: ConstantNode) -> str:
        value = node.value
        if value is None or isinstance(value, (int, str)):
            return repr(value)
        raise CodegenError(f"unsupported constant {value!r}")

    @staticmethod
    def _wrap(inner: str) -> str:
        return (f"(_w - {_SPAN} if (_w := ({inner}) & {_MASK})"
                f" & {_SIGN} else _w)")

    def _value_expr(self, root: Node, as_test: bool = False) -> str:
        """A Python expression evaluating *root* at this point (may emit
        temp-assignment lines first).  With *as_test*, a top-level
        comparison renders as a native boolean expression (identical
        truthiness, no 0/1 materialization)."""
        if isinstance(root, ConstantNode):
            return self._const_literal(root)
        if self._is_leaf(root):
            return self._name(root)
        if not isinstance(root, _INTERIOR):
            raise CodegenError(f"cannot evaluate {root!r}")
        temps = self._prepare_tree(root)
        if as_test and isinstance(root, IntCompareNode) \
                and root not in temps:
            x = self._render(root.x, temps)
            y = self._render(root.y, temps)
            if root.op == "below":
                return f"((0 <= (_w := {x})) & (_w < ({y})))"
            return f"(({x}) {_PY_CMP[root.op]} ({y}))"
        return self._render(root, temps)

    def _prepare_tree(self, root: Node) -> Dict[Node, str]:
        """Charge the tree's interior costs (each unique node once, like
        the interpreter's per-evaluation memo) and hoist shared or deep
        always-evaluated subtrees into temporaries."""
        counts: Dict[Node, int] = {}
        stack = [root]
        while stack:
            node = stack.pop()
            if not isinstance(node, _INTERIOR):
                continue
            seen = counts.get(node, 0) + 1
            counts[node] = seen
            if seen == 1:
                stack.extend(_expr_children(node))
        for node in counts:
            self.pending_cycles += self.cost_model.node_cost(node)
        shared = {node for node, count in counts.items() if count > 1}
        # Nodes evaluated on every execution of the statement: reachable
        # without entering a conditional's value arms.  Only these may
        # be hoisted (hoisting an arm would break trap laziness).
        always: set = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if not isinstance(node, _INTERIOR) or node in always:
                continue
            always.add(node)
            if isinstance(node, ConditionalNode):
                stack.append(node.condition)
            else:
                stack.extend(_expr_children(node))
        # Postorder over the interior DAG (children before parents).
        post: List[Node] = []
        state: List[Tuple[Node, int]] = [(root, 0)]
        on_stack = {root}
        visited: set = set()
        while state:
            node, child_index = state.pop()
            children = [child for child in _expr_children(node)
                        if isinstance(child, _INTERIOR)
                        and child not in visited]
            if child_index < len(children):
                state.append((node, child_index + 1))
                child = children[child_index]
                if child not in on_stack:
                    on_stack.add(child)
                    state.append((child, 0))
            else:
                if node not in visited:
                    visited.add(node)
                    post.append(node)
        hoist: List[Node] = []
        depth: Dict[Node, int] = {}
        hoisted: set = set()
        for node in post:
            child_depth = max(
                (depth.get(child, 0)
                 for child in _expr_children(node)
                 if isinstance(child, _INTERIOR)
                 and child not in hoisted), default=0)
            own = child_depth + 1
            wants_hoist = (node in shared
                           or own > _HOIST_DEPTH) and node is not root
            if wants_hoist and node in always:
                hoist.append(node)
                hoisted.add(node)
                own = 0
            depth[node] = own
        if depth.get(root, 0) > _MAX_DEPTH:
            raise CodegenError("expression tree too deep to inline")
        temps: Dict[Node, str] = {}
        for node in hoist:
            text = self._render(node, temps)
            name = f"_t{self._temp_counter}"
            self._temp_counter += 1
            self._line(f"{name} = {text}")
            temps[node] = name
        return temps

    def _render(self, node: Node, temps: Dict[Node, str]) -> str:
        name = temps.get(node)
        if name is not None:
            return name
        if isinstance(node, ConstantNode):
            return self._const_literal(node)
        if self._is_leaf(node):
            return self._name(node)
        if isinstance(node, BinaryArithmeticNode):
            x = self._render(node.x, temps)
            y = self._render(node.y, temps)
            symbol = _PY_ARITH.get(node.op)
            if symbol is not None:
                return self._wrap(f"({x}) {symbol} ({y})")
            return f"{_FN_ARITH[node.op]}({x}, {y})"
        if isinstance(node, IntCompareNode):
            x = self._render(node.x, temps)
            y = self._render(node.y, temps)
            if node.op == "below":
                # Eager `&` (not `and`): both compares always evaluate,
                # like the interpreter's evaluator.
                return (f"(1 if (0 <= (_w := {x})) & (_w < ({y})) "
                        f"else 0)")
            return f"(1 if ({x}) {_PY_CMP[node.op]} ({y}) else 0)"
        if isinstance(node, NegNode):
            value = self._render(node.value, temps)
            return self._wrap(f"-({value})")
        if isinstance(node, ConditionalNode):
            condition = self._render(node.condition, temps)
            true_value = self._render(node.true_value, temps)
            false_value = self._render(node.false_value, temps)
            return (f"(({true_value}) if ({condition}) "
                    f"else ({false_value}))")
        raise CodegenError(f"cannot evaluate {node!r}")

    # -- deopt/const tables ------------------------------------------------

    def _deopt_site(self, state: FrameStateNode) -> int:
        if state is None:
            raise CodegenError("deopt without frame state")
        self.deopt_states.append(state)
        return len(self.deopt_states) - 1

    def _const_ref(self, kind: str, node: Node) -> str:
        index = len(self.consts)
        self.consts.append((kind, node))
        return f"_K{index}"

    # -- join discovery ----------------------------------------------------

    @staticmethod
    def _common_join(chains: List[List[MergeNode]]
                     ) -> Optional[MergeNode]:
        """The earliest merge every (non-terminating) arm falls
        through, or ``None``.  Emission is correct for *any* choice —
        an arm that never reaches the join inlines its own merge tail
        (:meth:`_emit_region`'s duplication path) and terminates — so
        the join exists purely to share the common continuation."""
        candidates = [chain for chain in chains if chain]
        if not candidates:
            return None
        for merge in candidates[0]:
            if all(merge in chain for chain in candidates[1:]):
                return merge
        return None

    def _merge_is_local(self, merge: MergeNode, ctx: _Ctx) -> bool:
        """An End can fall into *merge* at *ctx*'s level only when the
        merge's innermost containing loop is the loop being emitted
        (both ``None`` at the top level); anything else is an out-edge
        of the current loop."""
        owner = self._merge_loop.get(merge)
        current = ctx.loop.begin if ctx.loop is not None else None
        return owner is current

    def _out_edge(self, loop: _Loop, target: Node) -> None:
        """Record *target* as an out-edge of *loop* and emit the break
        that selects it; the target is (re-)emitted — and counted — by
        the dispatch after the loop's ``while``."""
        index = loop.out_index.get(target)
        if index is None:
            index = len(loop.targets)
            loop.out_index[target] = index
            loop.targets.append(target)
        self._flush()
        self._line(f"_x{loop.begin.id} = {index}")
        self._line("break")

    def _collect_out_targets(self, begin: LoopBeginNode) -> List[Node]:
        """The out-edge targets emitting *begin*'s body will discover,
        in discovery order, without emitting anything — what
        :meth:`_probe` needs to walk *past* a nested loop.  Targets are
        the nodes the body cannot consume at its own level: LoopExits
        (of any loop), LoopEnds of other loops, and Ends feeding merges
        outside the body."""
        cached = self._out_cache.get(begin)
        if cached is not None:
            return cached
        targets: List[Node] = []
        index: Dict[Node, int] = {}
        visited = set()

        def collect(target: Node) -> None:
            if target not in index:
                index[target] = len(targets)
                targets.append(target)

        def walk(node: Node) -> None:
            while node is not None:
                if node in visited:
                    return
                visited.add(node)
                if isinstance(node, (ReturnNode, DeoptimizeNode)):
                    return
                if isinstance(node, LoopEndNode):
                    if node.loop_begin is not begin:
                        collect(node)
                    return
                if isinstance(node, LoopExitNode):
                    collect(node)
                    return
                if isinstance(node, IfNode):
                    walk(node.true_successor)
                    walk(node.false_successor)
                    return
                if isinstance(node, EndNode):
                    merge = node.merge()
                    if merge is None:
                        raise CodegenError(f"{node} feeds no merge")
                    if isinstance(merge, LoopBeginNode):
                        for inner in self._collect_out_targets(merge):
                            if isinstance(inner, LoopExitNode) and \
                                    inner.loop_begin is merge:
                                walk(inner.next)
                            else:
                                walk(inner)
                        return
                    if self._merge_loop.get(merge) is begin:
                        walk(merge.next)
                        return
                    collect(node)
                    return
                node = node.next

        walk(begin.next)
        self._out_cache[begin] = targets
        return targets

    def _probe(self, node: Node, ctx: _Ctx) -> List[MergeNode]:
        """The ordered chain of local merges control falls through from
        *node* before terminating at *ctx*'s structural level (ending,
        inclusively, at ``ctx.join`` when it is reached).  Nested Ifs
        and loops consume their own joins exactly as
        :meth:`_emit_region` will emit them; the chain is what
        :meth:`_common_join` picks a shared continuation from."""
        chain: List[MergeNode] = []
        steps = 0
        while True:
            steps += 1
            if steps > 200_000:
                raise CodegenError("probe did not converge")
            if isinstance(node, (ReturnNode, DeoptimizeNode)):
                return chain
            if isinstance(node, LoopEndNode):
                if ctx.loop is None:
                    raise CodegenError("loop end outside any loop")
                return chain  # a continue or an out-edge: terminal here
            if isinstance(node, LoopExitNode):
                if ctx.loop is None:
                    raise CodegenError("loop exit outside any loop")
                return chain  # always an out-edge of the current loop
            if isinstance(node, EndNode):
                merge = node.merge()
                if merge is None:
                    raise CodegenError(f"{node} feeds no merge")
                if isinstance(merge, LoopBeginNode):
                    inner_targets = self._collect_out_targets(merge)
                    if not inner_targets:
                        return chain
                    if len(inner_targets) == 1:
                        target = inner_targets[0]
                        # Mirrors _emit_loop's single-target return:
                        # the continuation is re-dispatched at ctx.
                        if isinstance(target, LoopExitNode) and \
                                target.loop_begin is merge:
                            node = target.next
                        else:
                            node = target
                        continue
                    arm_chains = []
                    for target in inner_targets:
                        if isinstance(target, LoopExitNode) and \
                                target.loop_begin is merge:
                            arm_chains.append(
                                self._probe(target.next, ctx))
                        else:
                            arm_chains.append(self._probe(target, ctx))
                    join = self._common_join(arm_chains)
                    if join is None:
                        return chain
                    chain.append(join)
                    if join is ctx.join:
                        return chain
                    node = join.next
                    continue
                if not self._merge_is_local(merge, ctx):
                    if ctx.loop is None:
                        raise CodegenError("end crosses a loop boundary")
                    return chain  # an out-edge of the current loop
                chain.append(merge)
                if merge is ctx.join:
                    return chain
                # Duplication path: emission inlines the merge tail.
                node = merge.next
                continue
            if isinstance(node, IfNode):
                join = self._common_join([
                    self._probe(node.true_successor, ctx),
                    self._probe(node.false_successor, ctx)])
                if join is None:
                    return chain
                chain.append(join)
                if join is ctx.join:
                    return chain
                # The If consumes this nested merge; keep walking after
                # it to find where *this* level falls out.
                node = join.next
                continue
            if node is None or node.next is None:
                raise CodegenError(f"cannot lower {node!r}")
            node = node.next

    # -- structured emission -----------------------------------------------

    def _indented_region(self, node: Node, ctx: _Ctx) -> None:
        mark = len(self.lines)
        self.indent += 1
        self._emit_region(node, ctx)
        if len(self.lines) == mark:
            self._line("pass")
        self.indent -= 1

    def _emit_phi_moves(self, merge: MergeNode, end: Node) -> None:
        index = merge.end_index(end)
        moves = [(self._name(phi), phi.values[index])
                 for phi in merge.phis()]
        if not moves:
            return
        if len(moves) == 1:
            name, value = moves[0]
            self._line(f"{name} = {self._value_expr(value)}")
            return
        # Tuple assignment: every input is read before any phi local is
        # written (loop phis may feed each other).
        exprs = [self._value_expr(value) for __, value in moves]
        targets = ", ".join(name for name, __ in moves)
        self._line(f"{targets} = {', '.join(exprs)}")

    def _emit_loop(self, begin: LoopBeginNode,
                   ctx: _Ctx) -> Optional[Node]:
        """Emit a whole loop; returns the node emission continues at
        (after the loop), or ``None`` when nothing can follow.  The body
        records every control transfer it cannot express locally as an
        out-edge (``_x<id> = k; break``); the dispatch emitted after the
        ``while`` re-emits each target at *ctx*'s level, so transfers
        spanning several loops propagate outward one level at a time."""
        loop = _Loop(begin)
        selector = f"_x{begin.id}"
        self._flush()
        self._line("while True:")
        self.indent += 1
        self._line(f"if (_st := _st + 1) > {MAX_CONTROL_STEPS}: _bx()")
        self._count(begin)
        self._emit_region(begin.next, _Ctx(loop, ()))
        self.indent -= 1
        targets = loop.targets
        if not targets:
            return None
        if len(targets) == 1:
            target = targets[0]
            if isinstance(target, LoopExitNode) and \
                    target.loop_begin is begin:
                self._count(target)
                return target.next
            return target  # re-dispatched by the caller's region loop
        # Multiple targets: an N-way dispatch on the selector, shaped
        # like an If (probe each continuation for the common join).
        chains = []
        for target in targets:
            if isinstance(target, LoopExitNode) and \
                    target.loop_begin is begin:
                chains.append(self._probe(target.next, ctx))
            else:
                chains.append(self._probe(target, ctx))
        join = self._common_join(chains)
        nested = join is not None and join is not ctx.join
        arm_ctx = ctx.with_join(join) if nested else ctx
        for index, target in enumerate(targets):
            if index == 0:
                self._line(f"if {selector} == 0:")
            elif index == len(targets) - 1:
                self._line("else:")
            else:
                self._line(f"elif {selector} == {index}:")
            mark = len(self.lines)
            self.indent += 1
            if isinstance(target, LoopExitNode) and \
                    target.loop_begin is begin:
                self._count(target)
                self._emit_region(target.next, arm_ctx)
            else:
                self._emit_region(target, arm_ctx)
            if len(self.lines) == mark:
                self._line("pass")
            self.indent -= 1
        if nested:
            self._count(join)
            return join.next
        return None

    def _emit_region(self, node: Node, ctx: _Ctx) -> None:
        """Emit the region starting at *node*; stops at *ctx*'s join
        (after emitting its phi moves) or when every path terminates."""
        while True:
            if isinstance(node, (StartNode, BeginNode)):
                self._count(node)
                node = node.next

            elif isinstance(node, EndNode):
                merge = node.merge()
                if merge is None:
                    raise CodegenError(f"{node} feeds no merge")
                if isinstance(merge, LoopBeginNode):
                    self._count(node)
                    self._emit_phi_moves(merge, node)
                    node = self._emit_loop(merge, ctx)
                    if node is None:
                        return
                    continue
                if not self._merge_is_local(merge, ctx):
                    if ctx.loop is None:
                        raise CodegenError("end crosses a loop boundary")
                    self._out_edge(ctx.loop, node)
                    return
                self._count(node)
                self._emit_phi_moves(merge, node)
                if merge is ctx.join:
                    self._flush()
                    return
                # Tail duplication: a local merge that is not the
                # chosen join (the merge DAG is not a tree here) is
                # inlined — its continuation is re-emitted on this
                # path.  Dynamically exclusive with every other copy,
                # so counts and effects match the nodal traversal; the
                # line budget bounds the blowup.
                self._count(merge)
                node = merge.next
                continue

            elif isinstance(node, LoopEndNode):
                loop = ctx.loop
                if loop is None:
                    raise CodegenError("loop end outside any loop")
                if node.loop_begin is not loop.begin:
                    # Back edge of an enclosing loop: break out one
                    # level and let the dispatch re-emit it there.
                    self._out_edge(loop, node)
                    return
                self._count(node)
                self._emit_phi_moves(loop.begin, node)
                self._flush()
                self._line("continue")
                return

            elif isinstance(node, LoopExitNode):
                if ctx.loop is None:
                    raise CodegenError("loop exit outside any loop")
                self._out_edge(ctx.loop, node)
                return

            elif isinstance(node, IfNode):
                self._count(node)
                join = self._common_join([
                    self._probe(node.true_successor, ctx),
                    self._probe(node.false_successor, ctx)])
                nested = join is not None and join is not ctx.join
                test = self._value_expr(node.condition, as_test=True)
                self._flush()
                arm_ctx = ctx.with_join(join) if nested else ctx
                self._line(f"if {test}:")
                self._indented_region(node.true_successor, arm_ctx)
                self._line("else:")
                self._indented_region(node.false_successor, arm_ctx)
                if nested:
                    self._count(join)
                    node = join.next
                    continue
                return

            elif isinstance(node, FixedGuardNode):
                self._count(node)
                test = self._value_expr(node.condition, as_test=True)
                self._flush()
                site = self._deopt_site(node.state)
                if node.negated:
                    self._line(f"if {test}:")
                else:
                    self._line(f"if not ({test}):")
                self.indent += 1
                self._line(f"return _d{site}(locals())")
                self.indent -= 1
                node = node.next

            elif isinstance(node, ReturnNode):
                self._count(node)
                if node.value is None:
                    self._flush()
                    self._line("return None")
                else:
                    expr = self._value_expr(node.value)
                    self._flush()
                    self._line(f"return {expr}")
                return

            elif isinstance(node, DeoptimizeNode):
                self._count(node)
                self._flush()
                site = self._deopt_site(node.state)
                self._line(f"return _d{site}(locals())")
                return

            elif isinstance(node, NewInstanceNode):
                self._count(node)
                on_stack = getattr(node, "stack_allocated", False)
                size = self.program.instance_size(node.class_name)
                self.pending_cycles += (
                    self.cost_model.stack_allocation_bytes_cost(size)
                    if on_stack
                    else self.cost_model.allocation_bytes_cost(size))
                self._line(f"{self._name(node)} = "
                           f"_ni({node.class_name!r}, {on_stack!r})")
                node = node.next

            elif isinstance(node, NewArrayNode):
                self._count(node)
                on_stack = getattr(node, "stack_allocated", False)
                length = self._value_expr(node.length)
                temp = f"_t{self._temp_counter}"
                self._temp_counter += 1
                self._line(f"{temp} = {length}")
                self._line(f"{self._name(node)} = "
                           f"_na({node.elem_type!r}, {temp}, "
                           f"{on_stack!r})")
                bytes_fn = "_sbc" if on_stack else "_abc"
                self._line(f"_c.cycles += {bytes_fn}(_asz({temp}))")
                node = node.next

            elif isinstance(node, LoadFieldNode):
                self._count(node)
                obj = self._value_expr(node.object)
                self._line(f"{self._name(node)} = _gf({obj}, "
                           f"{node.field.field_name!r})")
                node = node.next

            elif isinstance(node, StoreFieldNode):
                self._count(node)
                obj = self._value_expr(node.object)
                value = self._value_expr(node.value)
                self._line(f"_pf({obj}, {node.field.field_name!r}, "
                           f"{value})")
                node = node.next

            elif isinstance(node, LoadStaticNode):
                self._count(node)
                self._line(f"{self._name(node)} = "
                           f"_gs({node.field.class_name!r}, "
                           f"{node.field.field_name!r})")
                node = node.next

            elif isinstance(node, StoreStaticNode):
                self._count(node)
                value = self._value_expr(node.value)
                self._line(f"_ss({node.field.class_name!r}, "
                           f"{node.field.field_name!r}, {value})")
                node = node.next

            elif isinstance(node, LoadIndexedNode):
                self._count(node)
                array = self._value_expr(node.array)
                index = self._value_expr(node.index)
                self._line(f"{self._name(node)} = _al({array}, {index})")
                node = node.next

            elif isinstance(node, StoreIndexedNode):
                self._count(node)
                array = self._value_expr(node.array)
                index = self._value_expr(node.index)
                value = self._value_expr(node.value)
                self._line(f"_as({array}, {index}, {value})")
                node = node.next

            elif isinstance(node, ArrayLengthNode):
                self._count(node)
                array = self._value_expr(node.array)
                self._line(f"{self._name(node)} = _ln({array})")
                node = node.next

            elif isinstance(node, RefEqualsNode):
                self._count(node)
                x = self._value_expr(node.x)
                y = self._value_expr(node.y)
                self._line(f"{self._name(node)} = "
                           f"1 if ({x}) is ({y}) else 0")
                node = node.next

            elif isinstance(node, IsNullNode):
                self._count(node)
                value = self._value_expr(node.value)
                self._line(f"{self._name(node)} = "
                           f"1 if ({value}) is None else 0")
                node = node.next

            elif isinstance(node, InstanceOfNode):
                self._count(node)
                value = self._value_expr(node.value)
                self._line(f"{self._name(node)} = _io({value}, "
                           f"{node.class_name!r})")
                node = node.next

            elif isinstance(node, MonitorEnterNode):
                self._count(node)
                obj = self._value_expr(node.object)
                self._line(f"_me({obj})")
                node = node.next

            elif isinstance(node, MonitorExitNode):
                self._count(node)
                obj = self._value_expr(node.object)
                self._line(f"_mx({obj})")
                node = node.next

            elif isinstance(node, InvokeNode):
                self._count(node)
                target = self._const_ref("target", node)
                arguments = [self._value_expr(argument)
                             for argument in node.arguments]
                call = (f"_iv({node.kind!r}, {target}, "
                        f"[{', '.join(arguments)}])")
                if node.has_value:
                    self._line(f"{self._name(node)} = {call}")
                else:
                    self._line(call)
                node = node.next

            else:
                raise CodegenError(f"cannot lower {node!r}")

    # -- entry -------------------------------------------------------------

    def emit(self) -> "_Emitted":
        graph = self.graph
        if graph.start is None:
            raise CodegenError("graph has no start node")
        params = list(graph.parameters)
        signature = ", ".join(self._name(param) for param in params)
        self.lines.append((1, f"def {self.entry_name}({signature}):"))
        self._line("_c.compiled_invocations += 1")
        if self._has_loops:
            self._line("_st = 0")
        self._emit_region(graph.start, _Ctx(None, ()))
        preamble = [(0, "def __factory(_rt):")]
        preamble.extend((1, f"{alias} = _rt[{key!r}]")
                        for alias, key in _HELPERS)
        preamble.extend(
            (1, f"_K{index} = _rt['consts'][{index}]")
            for index in range(len(self.consts)))
        preamble.extend(
            (1, f"_d{index} = _rt['deopts'][{index}]")
            for index in range(len(self.deopt_states)))
        tail = [(1, f"return {self.entry_name}")]
        source = "\n".join("    " * indent + text for indent, text
                           in preamble + self.lines + tail) + "\n"
        return _Emitted(source, self.entry_name, self.names,
                        self.deopt_states, self.consts,
                        [param.index for param in params])


class _Emitted:
    """The output of one emission pass."""

    __slots__ = ("source", "entry_name", "names", "deopt_states",
                 "consts", "arg_indices")

    def __init__(self, source, entry_name, names, deopt_states, consts,
                 arg_indices):
        self.source = source
        self.entry_name = entry_name
        self.names = names
        self.deopt_states = deopt_states
        self.consts = consts
        self.arg_indices = arg_indices


class BoundCode:
    """Generated code linked to one VM — the codegen counterpart of
    :class:`~repro.runtime.plan.BoundPlan`."""

    __slots__ = ("plan", "function", "execute")

    def __init__(self, plan: "CodegenPlan", function: Callable,
                 arg_indices: List[int]):
        self.plan = plan
        self.function = function
        indices = tuple(arg_indices)

        def execute(args, _fn=function, _indices=indices):
            return _fn(*[args[index] for index in _indices])

        self.execute = execute


class CodegenPlan:
    """The static lowering of one graph to Python source.

    Built by the compiler (``execution_backend="codegen"``); its
    :meth:`payload` rides through the compilation cache next to the
    graph blob, and :meth:`bind` links the generated function against
    one VM's runtime objects."""

    def __init__(self, graph: Graph, program: Program,
                 cost_model: CostModel, label: str = "compiled"):
        self.graph = graph
        self.program = program
        self.cost_model = cost_model
        self.label = label
        emitted = _Emitter(graph, program, cost_model, label).emit()
        self._install(emitted)

    def _install(self, emitted: _Emitted) -> None:
        self.source = emitted.source
        self.entry_name = emitted.entry_name
        self.names = emitted.names
        self.deopt_states = emitted.deopt_states
        self.consts = emitted.consts
        self.arg_indices = emitted.arg_indices
        self.digest = source_digest(self.source)
        self._code = None

    @property
    def code_size(self) -> int:
        """Generated-code size in source bytes (jitdiff's size metric)."""
        return len(self.source)

    # -- serialization -----------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """Everything the compilation cache persists: the source text
        with its digest, plus the node-id tables to re-link deopt sites
        and invoke targets against the cached graph on warm load."""
        return {
            "source": self.source,
            "digest": self.digest,
            "entry": self.entry_name,
            "label": self.label,
            "names": {node.id: name
                      for node, name in self.names.items()},
            "deopt_states": [state.id for state in self.deopt_states],
            "consts": [(kind, node.id) for kind, node in self.consts],
            "arg_indices": list(self.arg_indices),
        }

    @classmethod
    def from_payload(cls, graph: Graph, program: Program,
                     cost_model: CostModel,
                     payload: Dict[str, Any]) -> "CodegenPlan":
        """Rebuild a plan from a cached graph and a persisted payload,
        skipping the emission pass.  A digest mismatch (corrupted
        source) or a stale node id raises :class:`CodegenError` — the
        compiler then regenerates from the graph."""
        plan = cls.__new__(cls)
        plan.graph = graph
        plan.program = program
        plan.cost_model = cost_model
        try:
            source = payload["source"]
            if source_digest(source) != payload["digest"]:
                raise CodegenError("codegen payload digest mismatch")
            plan.label = payload["label"]
            plan.source = source
            plan.entry_name = payload["entry"]
            plan.names = {graph._nodes[node_id]: name
                          for node_id, name in payload["names"].items()}
            plan.deopt_states = [graph._nodes[node_id]
                                 for node_id in payload["deopt_states"]]
            plan.consts = [(kind, graph._nodes[node_id])
                           for kind, node_id in payload["consts"]]
            plan.arg_indices = list(payload["arg_indices"])
        except CodegenError:
            raise
        except Exception as error:
            raise CodegenError(f"stale codegen payload: {error}")
        plan.digest = payload["digest"]
        plan._code = None
        return plan

    # -- binding -----------------------------------------------------------

    def bind(self, heap: Heap, stats: ExecutionStats,
             invoke_callback: Callable[[str, Any, List[Any]], Any],
             deoptimizer: Optional[Deoptimizer] = None,
             collect_histogram: bool = False) -> BoundCode:
        """``exec`` the generated source against one VM's runtime.

        Histogram collection re-emits an instrumented variant from the
        graph (the cached source stays uninstrumented — instrumentation
        is a bind-time concern, like the plan backend's wrappers)."""
        if collect_histogram:
            emitted = _Emitter(self.graph, self.program, self.cost_model,
                               self.label, histogram=True).emit()
            code = self._compile(emitted.source)
            names = emitted.names
            deopt_states = emitted.deopt_states
            consts = emitted.consts
            arg_indices = emitted.arg_indices
            entry_name = emitted.entry_name
        else:
            if self._code is None:
                self._code = self._compile(self.source)
            code = self._code
            names = self.names
            deopt_states = self.deopt_states
            consts = self.consts
            arg_indices = self.arg_indices
            entry_name = self.entry_name

        histogram = stats.node_kind_executions

        def hist_merge(kinds, _histogram=histogram):
            for kind, count in kinds.items():
                _histogram[kind] = _histogram.get(kind, 0) + count

        runtime = {
            "stats": stats,
            "new_instance": heap.new_instance,
            "new_array": heap.new_array,
            "get_field": heap.get_field,
            "put_field": heap.put_field,
            "array_load": heap.array_load,
            "array_store": heap.array_store,
            "array_length": heap.array_length,
            "instance_of": heap.instance_of,
            "monitor_enter": heap.monitor_enter,
            "monitor_exit": heap.monitor_exit,
            "get_static": self.program.get_static,
            "set_static": self.program.set_static,
            "invoke": invoke_callback,
            "java_div": java_div,
            "java_rem": java_rem,
            "java_shl": java_shl,
            "java_shr": java_shr,
            "alloc_bytes": self.cost_model.allocation_bytes_cost,
            "stack_bytes": self.cost_model.stack_allocation_bytes_cost,
            "array_size": self.program.array_size,
            "budget": _raise_budget,
            "hist_merge": hist_merge,
            "consts": [self._resolve_const(kind, node)
                       for kind, node in consts],
            "deopts": [self._make_deopt(state, names, stats,
                                        deoptimizer)
                       for state in deopt_states],
        }
        namespace: Dict[str, Any] = {}
        exec(code, namespace)  # noqa: S102 - code we just generated
        function = namespace["__factory"](runtime)
        function.__qualname__ = f"codegen[{self.label}]"
        if function.__code__.co_name != entry_name:  # pragma: no cover
            raise CodegenError("generated entry name mismatch")
        return BoundCode(self, function, arg_indices)

    def _compile(self, source: str):
        try:
            return compile(source, f"<codegen:{self.label}>", "exec")
        except SyntaxError as error:  # pragma: no cover - emitter bug
            raise CodegenError(f"generated source does not parse: "
                               f"{error}")

    @staticmethod
    def _resolve_const(kind: str, node: Node) -> Any:
        if kind == "target":
            return node.target
        raise CodegenError(f"unknown constant kind {kind!r}")

    def _make_deopt(self, state: FrameStateNode,
                    names: Dict[Node, str], stats: ExecutionStats,
                    deoptimizer: Optional[Deoptimizer]):
        """A deopt-site closure: charges the deopt, then hands the
        Deoptimizer an evaluator over the generated frame's locals (the
        baked-in node→local-name rematerialization map)."""
        node_cost = self.cost_model.node_cost
        deopt_cost = self.cost_model.deopt

        def run_deopt(frame_locals: Dict[str, Any]) -> Any:
            if deoptimizer is None:
                raise GraphExecutionError(
                    "deoptimization with no deoptimizer attached")
            stats.deopts += 1
            stats.cycles += deopt_cost
            memo: Dict[Node, Any] = {}

            def evaluate(node):
                name = names.get(node)
                if name is not None:
                    value = frame_locals.get(name, _MISSING)
                    if value is not _MISSING:
                        return value
                if isinstance(node, ConstantNode):
                    return node.value
                if node in memo:
                    return memo[node]
                if isinstance(node, BinaryArithmeticNode):
                    value = node.evaluate(evaluate(node.x),
                                          evaluate(node.y))
                elif isinstance(node, IntCompareNode):
                    value = node.evaluate(evaluate(node.x),
                                          evaluate(node.y))
                elif isinstance(node, NegNode):
                    value = wrap_int(-evaluate(node.value))
                elif isinstance(node, ConditionalNode):
                    condition = evaluate(node.condition)
                    value = evaluate(node.true_value if condition
                                     else node.false_value)
                else:
                    raise GraphExecutionError(
                        f"cannot evaluate {node!r} "
                        f"(not in environment)")
                memo[node] = value
                stats.cycles += node_cost(node)
                return value

            return deoptimizer.deoptimize(state, evaluate)

        return run_deopt


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()
