"""Control-flow graph over the IR's fixed nodes.

Partial Escape Analysis iterates blocks in reverse post order and needs
loop membership to run its iterative loop processing (Section 5.4); the
cost model uses block/node counts as its code-size proxy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.graph import Graph
from ..ir.node import (ControlSinkNode, ControlSplitNode, FixedNode,
                       FixedWithNextNode, IRError, Node)
from ..ir.nodes import (BeginNode, EndNode, IfNode, LoopBeginNode,
                        LoopEndNode, MergeNode, StartNode)


class IRBlock:
    """A maximal straight-line sequence of fixed nodes."""

    def __init__(self, index: int, nodes: List[FixedNode]):
        self.index = index
        self.nodes = nodes
        self.successors: List["IRBlock"] = []
        self.predecessors: List["IRBlock"] = []

    @property
    def first(self) -> FixedNode:
        return self.nodes[0]

    @property
    def last(self) -> FixedNode:
        return self.nodes[-1]

    @property
    def is_loop_header(self) -> bool:
        return isinstance(self.first, LoopBeginNode)

    def __repr__(self):
        return (f"<IRBlock {self.index}: {self.first!r} .. "
                f"{self.last!r}>")


class ControlFlowGraph:
    """Blocks, reverse post order and natural loops of a graph."""

    def __init__(self, graph: Graph):
        self.graph = graph
        self.blocks: List[IRBlock] = []
        self.block_of: Dict[Node, IRBlock] = {}
        self.rpo: List[IRBlock] = []
        self._loop_members: Dict[IRBlock, Set[IRBlock]] = {}
        self._build()

    # -- construction ---------------------------------------------------

    def _build(self):
        graph = self.graph
        entries: List[FixedNode] = [graph.start]
        seen: Set[Node] = {graph.start}
        while entries:
            first = entries.pop()
            nodes: List[FixedNode] = [first]
            current = first
            while isinstance(current, FixedWithNextNode):
                successor = current.next
                if successor is None:
                    raise IRError(f"{current} has no next")
                if isinstance(successor, MergeNode):
                    break  # merge starts its own block
                nodes.append(successor)
                current = successor
            block = IRBlock(len(self.blocks), nodes)
            self.blocks.append(block)
            for node in nodes:
                self.block_of[node] = block
            # Discover new block entries.
            last = nodes[-1]
            targets: List[FixedNode] = []
            if isinstance(last, ControlSplitNode):
                targets.extend(last.successors())
            elif isinstance(last, EndNode):
                merge = last.merge()
                if merge is None:
                    raise IRError(f"{last} feeds no merge")
                targets.append(merge)
            elif isinstance(last, LoopEndNode):
                targets.append(last.loop_begin)
            elif isinstance(last, FixedWithNextNode):
                targets.append(last.next)  # a merge
            for target in targets:
                if target not in seen:
                    seen.add(target)
                    entries.append(target)

        # Edges (now that all blocks exist).
        for block in self.blocks:
            last = block.last
            if isinstance(last, ControlSplitNode):
                succs = list(last.successors())
            elif isinstance(last, EndNode):
                succs = [last.merge()]
            elif isinstance(last, LoopEndNode):
                succs = [last.loop_begin]
            elif isinstance(last, FixedWithNextNode):
                succs = [last.next]
            else:  # control sink
                succs = []
            for succ in succs:
                succ_block = self.block_of[succ]
                block.successors.append(succ_block)
                succ_block.predecessors.append(block)

        self._compute_rpo()
        self._compute_loops()

    def _compute_rpo(self):
        entry = self.block_of[self.graph.start]
        post: List[IRBlock] = []
        visited: Set[IRBlock] = {entry}
        stack = [(entry, 0)]
        while stack:
            block, index = stack.pop()
            # Skip back edges (LoopEnd -> LoopBegin) during the DFS.
            successors = [s for s in block.successors
                          if not isinstance(block.last, LoopEndNode)]
            if index < len(successors):
                stack.append((block, index + 1))
                succ = successors[index]
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, 0))
            else:
                post.append(block)
        self.rpo = list(reversed(post))

    def _compute_loops(self):
        for block in self.blocks:
            if not block.is_loop_header:
                continue
            header: LoopBeginNode = block.first  # type: ignore[assignment]
            members: Set[IRBlock] = {block}
            worklist = [self.block_of[le] for le in header.loop_ends]
            while worklist:
                member = worklist.pop()
                if member in members:
                    continue
                members.add(member)
                worklist.extend(member.predecessors)
            self._loop_members[block] = members

    # -- dominators ------------------------------------------------------------

    def compute_dominators(self) -> Dict[IRBlock, Optional[IRBlock]]:
        """Immediate dominators (Cooper-Harvey-Kennedy), cached."""
        if hasattr(self, "_idom"):
            return self._idom
        entry = self.block_of[self.graph.start]
        rpo_index = {block: i for i, block in enumerate(self.rpo)}
        idom: Dict[IRBlock, IRBlock] = {entry: entry}
        changed = True
        while changed:
            changed = False
            for block in self.rpo:
                if block is entry:
                    continue
                preds = [p for p in block.predecessors if p in idom]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = self._intersect(new_idom, pred, idom,
                                               rpo_index)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True
        self._idom = {block: (None if block is entry
                              else idom.get(block))
                      for block in self.blocks}
        return self._idom

    @staticmethod
    def _intersect(a, b, idom, rpo_index):
        while a is not b:
            while rpo_index.get(a, 0) > rpo_index.get(b, 0):
                a = idom[a]
            while rpo_index.get(b, 0) > rpo_index.get(a, 0):
                b = idom[b]
        return a

    def dominates(self, a: IRBlock, b: IRBlock) -> bool:
        """True if block *a* dominates block *b*."""
        idom = self.compute_dominators()
        current: Optional[IRBlock] = b
        while current is not None:
            if current is a:
                return True
            current = idom.get(current)
        return False

    def dominator_children(self) -> Dict[IRBlock, List[IRBlock]]:
        idom = self.compute_dominators()
        children: Dict[IRBlock, List[IRBlock]] = {b: [] for b in
                                                  self.blocks}
        for block, parent in idom.items():
            if parent is not None:
                children[parent].append(block)
        return children

    # -- queries --------------------------------------------------------------

    def loop_members(self, header_block: IRBlock) -> Set[IRBlock]:
        return self._loop_members[header_block]

    def block_containing(self, node: Node) -> Optional[IRBlock]:
        return self.block_of.get(node)
