"""Control-flow structure over the IR."""

from .cfg import ControlFlowGraph, IRBlock

__all__ = ["ControlFlowGraph", "IRBlock"]
