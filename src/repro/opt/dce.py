"""Dead code elimination.

Removes (a) floating nodes with no usages and (b) *pure* fixed nodes whose
value is unused — loads, compares, array lengths.  It deliberately does
NOT remove unused allocations or monitor operations: eliminating those is
exactly what Escape Analysis is for, and removing them here would
contaminate the no-EA baseline configuration of the evaluation.
"""

from __future__ import annotations

from ..ir.graph import Graph
from ..ir.nodes import (ArrayLengthNode, InstanceOfNode, IsNullNode,
                        LoadFieldNode, LoadIndexedNode, LoadStaticNode,
                        RefEqualsNode)
from .phase import Phase
from .util import sweep_floating

#: Fixed nodes with no side effect whose unused results may be dropped.
_PURE_FIXED = (LoadFieldNode, LoadIndexedNode, LoadStaticNode,
               ArrayLengthNode, RefEqualsNode, IsNullNode, InstanceOfNode)


class DeadCodeEliminationPhase(Phase):
    name = "dce"

    def run(self, graph: Graph) -> bool:
        changed = bool(sweep_floating(graph))
        again = True
        while again:
            again = False
            for node in graph.nodes():
                if node.graph is not graph:
                    continue
                if isinstance(node, _PURE_FIXED) and node.has_no_usages():
                    graph.remove_fixed(node)
                    changed = True
                    again = True
            if again:
                sweep_floating(graph)
        return changed
