"""Stack allocation — the other classic Escape Analysis consumer.

Section 3 of the paper lists three optimizations EA enables: scalar
replacement, lock elision (both implemented by PEA) and *stack
allocation* ("allocation on the stack or in other non-garbage-collected
allocation areas such as zones").  Scalar replacement subsumes stack
allocation when it applies; this phase picks up what's left: allocations
that survived PEA (e.g. phi-merged objects that had to materialize) but
still provably never escape the method get flagged ``stack_allocated``.

The runtime then serves them from the simulated stack/zone: they are
counted separately (``HeapStats.stack_allocations``), never enter the
simulated GC nursery (:mod:`repro.runtime.gcsim`), and are charged the
much cheaper non-GC allocation cost.

Who runs this phase is owned by the escape-tier policy
(``CompilerConfig.escape_tier``, ISSUE 9): the ``conngraph`` tier runs
it with the connection-graph analysis as its *primary* optimization,
the ``pea`` tier runs it after PEA (summary-marginal mode when escape
summaries are enabled), and the ``none``/``equi`` tiers do not run it
— so Table 1's heap numbers stay comparable with the paper's
configurations.  The legacy ``CompilerConfig.stack_allocation`` boolean
survives only as a deprecation shim onto that policy.
"""

from __future__ import annotations

from ..bytecode.classfile import Program
from ..ir.graph import Graph
from ..ir.nodes import NewArrayNode, NewInstanceNode
from ..pea.equi_escape import EquiEscapeSets
from .phase import Phase


class StackAllocationPhase(Phase):
    name = "stack-allocation"

    def __init__(self, program: Program, summaries=None,
                 marginal_only: bool = False, analysis: str = "equi"):
        self.program = program
        #: Optional interprocedural escape summaries
        #: (:class:`repro.analysis.summaries.SummaryView`): invoke
        #: arguments with proven non-capturing callees stop escaping.
        self.summaries = summaries
        #: With ``marginal_only`` the phase flags only allocations the
        #: summaries *uniquely* enable (approved with summaries but not
        #: without).  That keeps an escape-summaries A/B attribution
        #: pure: the baseline configuration never runs this phase, so
        #: plain-approved allocations must stay on the heap in both
        #: arms.
        self.marginal_only = marginal_only
        #: Which escape analysis approves allocations: ``"equi"``
        #: (union-find equi-escape sets) or ``"conngraph"`` (the
        #: directed connection graph — at least as precise, still
        #: cheap; the analysis the ``conngraph`` tier feeds through
        #: here).
        if analysis not in ("equi", "conngraph"):
            raise ValueError(f"unknown stack-allocation analysis "
                             f"{analysis!r}")
        self.analysis = analysis
        self.flagged = 0

    def _approved(self, graph: Graph, summaries):
        if self.analysis == "conngraph":
            from ..analysis.conngraph import ConnectionGraph
            return ConnectionGraph(graph, self.program,
                                   summaries=summaries).analyze()
        return EquiEscapeSets(graph, self.program,
                              summaries=summaries).analyze()

    def run(self, graph: Graph) -> bool:
        approved = self._approved(graph, self.summaries)
        if self.marginal_only and self.summaries is not None:
            approved = approved - self._approved(graph, None)
        changed = False
        for node in graph.nodes_of(NewInstanceNode, NewArrayNode):
            if node in approved and not getattr(node, "stack_allocated",
                                                False):
                node.stack_allocated = True
                self.flagged += 1
                changed = True
        return changed
