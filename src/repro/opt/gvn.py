"""Global value numbering over pure floating nodes.

Constants are value-numbered at creation by the graph; this phase
hash-conses arithmetic, comparisons and negations (with commutative
normalization), so that e.g. the two ``key.idx == tmp1.idx`` operand
trees of an inlined equals() collapse.

Fixed nodes are never value-numbered: memory reads need a memory
dependence analysis to be safely combined (Graal does this as part of
read elimination inside PEA; out of scope here).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir.graph import Graph
from ..ir.nodes import (COMMUTATIVE_OPS, BinaryArithmeticNode,
                        ConditionalNode, IntCompareNode, NegNode)
from .phase import Phase


class GlobalValueNumberingPhase(Phase):
    name = "gvn"

    def run(self, graph: Graph) -> bool:
        table: Dict[Tuple, object] = {}
        changed = False
        again = True
        while again:
            again = False
            for node in graph.nodes():
                if node.graph is not graph:
                    continue
                key = self._key(node)
                if key is None:
                    continue
                existing = table.get(key)
                if existing is None or existing.graph is not graph:
                    table[key] = node
                elif existing is not node:
                    node.replace_at_usages(existing)
                    node.clear_inputs()
                    node.safe_delete()
                    changed = True
                    again = True
        return changed

    @staticmethod
    def _key(node):
        if isinstance(node, BinaryArithmeticNode):
            x, y = node.x, node.y
            if x is None or y is None:
                return None
            if node.op in COMMUTATIVE_OPS and y.id < x.id:
                x, y = y, x
            return ("arith", node.op, x.id, y.id)
        if isinstance(node, IntCompareNode):
            if node.x is None or node.y is None:
                return None
            return ("cmp", node.op, node.x.id, node.y.id)
        if isinstance(node, NegNode):
            if node.value is None:
                return None
            return ("neg", node.value.id)
        if isinstance(node, ConditionalNode):
            if None in (node.condition, node.true_value,
                        node.false_value):
                return None
            return ("cond", node.condition.id, node.true_value.id,
                    node.false_value.id)
        return None
