"""Conditional elimination: fold conditions proven by dominators.

A branch establishes a fact about its condition node on each successor
(true on the true side, false on the false side); a passing guard
establishes its expected value for everything after it.  Because global
value numbering collapses identical condition expressions into one node,
a later If or guard over the *same node* inside the dominated region is
decided at compile time:

    if (x < y) {
        ...
        if (x < y) { A } else { B }   // always A
    }

Also folds redundant null-check guards after an earlier guard on the
same IsNull node — the pattern the graph builder emits per access.

The walk follows the dominator tree; facts are scoped to the subtree
that established them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.graph import Graph
from ..ir.node import Node
from ..ir.nodes import (FixedGuardNode, IfNode, InstanceOfNode,
                        IsNullNode, RefEqualsNode)
from ..scheduler.cfg import ControlFlowGraph, IRBlock
from .canonicalize import CanonicalizerPhase
from .phase import Phase


def _fact_key(condition: Optional[Node]):
    """Semantic identity of a condition.

    Fixed check nodes (IsNull, RefEquals, InstanceOf) are one-per-site,
    so two null checks of the same value are different nodes; key them
    by what they test so dominated re-checks fold.
    """
    if condition is None:
        return None
    if isinstance(condition, IsNullNode):
        return ("isnull", condition.value)
    if isinstance(condition, RefEqualsNode):
        a, b = condition.x, condition.y
        if a is not None and b is not None and b.id < a.id:
            a, b = b, a
        return ("refeq", a, b)
    if isinstance(condition, InstanceOfNode):
        return ("instanceof", condition.class_name, condition.value)
    return condition


class ConditionalEliminationPhase(Phase):
    name = "conditional-elimination"

    def run(self, graph: Graph) -> bool:
        if graph.start is None:
            return False
        cfg = ControlFlowGraph(graph)
        children = cfg.dominator_children()
        entry = cfg.block_of[graph.start]
        #: condition node -> proven truth value (bool).
        facts: Dict[Node, bool] = {}
        #: (node, condition_value) to rewrite, applied afterwards so the
        #: CFG stays stable during the walk.
        decisions: List[Tuple[Node, bool]] = []

        def establishes(block: IRBlock):
            """The fact the *edge into* this block proves."""
            preds = block.predecessors
            if len(preds) != 1:
                return None  # merges join facts; keep it simple
            terminator = preds[0].last
            if isinstance(terminator, IfNode):
                if terminator.true_successor is block.first:
                    return (_fact_key(terminator.condition), True)
                if terminator.false_successor is block.first:
                    return (_fact_key(terminator.condition), False)
            return None

        def walk(block: IRBlock):
            added: List = []
            fact = establishes(block)
            if fact is not None and fact[0] is not None and \
                    fact[0] not in facts:
                facts[fact[0]] = fact[1]
                added.append(fact[0])
            for node in block.nodes:
                if isinstance(node, IfNode):
                    key = _fact_key(node.condition)
                    if key in facts:
                        decisions.append((node, facts[key]))
                elif isinstance(node, FixedGuardNode):
                    key = _fact_key(node.condition)
                    if key is None:
                        continue
                    if key in facts:
                        decisions.append((node, facts[key]))
                    else:
                        # After a passing guard the condition is known.
                        facts[key] = not node.negated
                        added.append(key)
            for child in children[block]:
                walk(child)
            for key in added:
                del facts[key]

        import sys
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10000))
        try:
            walk(entry)
        finally:
            sys.setrecursionlimit(old_limit)

        if not decisions:
            return False
        changed = False
        canonicalizer = CanonicalizerPhase()
        for node, value in decisions:
            if node.graph is not graph:
                continue  # removed by an earlier decision's branch kill
            constant = graph.constant(1 if value else 0)
            if isinstance(node, IfNode):
                node.condition = constant
                changed |= canonicalizer._if(graph, node)
            else:
                node.condition = constant
                changed |= canonicalizer._guard(graph, node)
        if changed:
            canonicalizer.run(graph)
        return changed
