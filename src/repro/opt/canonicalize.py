"""Canonicalization: constant folding, algebraic simplification,
degenerate-phi removal, constant-condition If/guard folding.

Runs to a fixed point.  Partial Escape Analysis depends on this phase
picking up the constants it produces (e.g. a RefEquals folded to 0/1
turning an If into straight-line code, which in turn keeps an allocation
virtual on the surviving path).
"""

from __future__ import annotations

from typing import Optional

from ..bytecode.heap import ArithmeticTrap
from ..ir.graph import Graph
from ..ir.node import Node
from ..ir.nodes import (BeginNode, BinaryArithmeticNode, ConditionalNode,
                        ConstantNode, DeoptimizeNode, FixedGuardNode,
                        IfNode, InstanceOfNode, IntCompareNode, IsNullNode,
                        LoopBeginNode, MergeNode, NegNode, NewArrayNode,
                        NewInstanceNode, PhiNode, RefEqualsNode)
from .phase import Phase
from .util import kill_branch, simplify_merge, sweep_floating


def _const(node: Optional[Node]):
    """The Python value of a ConstantNode, or a miss marker."""
    if isinstance(node, ConstantNode):
        return node.value
    return _MISS


_MISS = object()


class CanonicalizerPhase(Phase):
    name = "canonicalize"

    def run(self, graph: Graph) -> bool:
        changed_any = False
        changed = True
        while changed:
            changed = False
            for node in graph.nodes():
                if node.graph is not graph:
                    continue  # deleted by an earlier rewrite this round
                if self._canonicalize(graph, node):
                    changed = True
                    changed_any = True
            if changed:
                sweep_floating(graph)
        return changed_any

    # -- dispatch -----------------------------------------------------------

    def _canonicalize(self, graph: Graph, node: Node) -> bool:
        if isinstance(node, BinaryArithmeticNode):
            return self._arithmetic(graph, node)
        if isinstance(node, IntCompareNode):
            return self._compare(graph, node)
        if isinstance(node, NegNode):
            value = _const(node.value)
            if value is not _MISS:
                from ..bytecode.interpreter import wrap_int
                node.replace_at_usages(graph.constant(wrap_int(-value)))
                node.clear_inputs()
                node.safe_delete()
                return True
            return False
        if isinstance(node, ConditionalNode):
            condition = _const(node.condition)
            if condition is not _MISS:
                result = (node.true_value if condition
                          else node.false_value)
                node.replace_at_usages(result)
                node.clear_inputs()
                node.safe_delete()
                return True
            return False
        if isinstance(node, PhiNode):
            return self._phi(node)
        if isinstance(node, IfNode):
            return self._if(graph, node)
        if isinstance(node, FixedGuardNode):
            return self._guard(graph, node)
        if isinstance(node, RefEqualsNode):
            return self._ref_equals(graph, node)
        if isinstance(node, IsNullNode):
            return self._is_null(graph, node)
        if isinstance(node, MergeNode):
            dead_loop = (not isinstance(node, LoopBeginNode)
                         or len(node.loop_ends) == 0)
            if dead_loop and len(node.ends) == 1 and node.graph is graph:
                simplify_merge(graph, node)
                return True
            return False
        return False

    # -- rewrites ----------------------------------------------------------------

    def _arithmetic(self, graph: Graph, node: BinaryArithmeticNode
                    ) -> bool:
        x, y = _const(node.x), _const(node.y)
        if x is not _MISS and y is not _MISS:
            try:
                value = node.evaluate(x, y)
            except ArithmeticTrap:
                return False  # leave the trap to the guard
            node.replace_at_usages(graph.constant(value))
            node.clear_inputs()
            node.safe_delete()
            return True
        replacement = None
        if node.op == "add":
            if x == 0:
                replacement = node.y
            elif y == 0:
                replacement = node.x
        elif node.op == "sub":
            if y == 0:
                replacement = node.x
            elif node.x is node.y:
                replacement = graph.constant(0)
        elif node.op == "mul":
            if x == 1:
                replacement = node.y
            elif y == 1:
                replacement = node.x
            elif x == 0 or y == 0:
                replacement = graph.constant(0)
        elif node.op in ("and", "or"):
            if node.x is node.y:
                replacement = node.x
        elif node.op == "xor":
            if node.x is node.y:
                replacement = graph.constant(0)
        if replacement is not None:
            node.replace_at_usages(replacement)
            node.clear_inputs()
            node.safe_delete()
            return True
        return False

    def _compare(self, graph: Graph, node: IntCompareNode) -> bool:
        x, y = _const(node.x), _const(node.y)
        if x is not _MISS and y is not _MISS:
            node.replace_at_usages(graph.constant(node.evaluate(x, y)))
            node.clear_inputs()
            node.safe_delete()
            return True
        if node.x is node.y and node.op in ("eq", "le", "ge"):
            node.replace_at_usages(graph.constant(1))
            node.clear_inputs()
            node.safe_delete()
            return True
        if node.x is node.y and node.op in ("ne", "lt", "gt"):
            node.replace_at_usages(graph.constant(0))
            node.clear_inputs()
            node.safe_delete()
            return True
        return False

    def _phi(self, node: PhiNode) -> bool:
        value = node.is_degenerate()
        if value is not None and value is not node:
            node.replace_at_usages(value)
            node.clear_inputs()
            node.safe_delete()
            return True
        return False

    def _if(self, graph: Graph, node: IfNode) -> bool:
        condition = _const(node.condition)
        if condition is _MISS:
            return False
        survivor = (node.true_successor if condition
                    else node.false_successor)
        victim = (node.false_successor if condition
                  else node.true_successor)
        predecessor = node.predecessor
        node.clear_successors()
        graph._replace_successor(predecessor, node, survivor)
        node.replace_at_usages(None)
        node.predecessor = None
        node.clear_inputs()
        node.safe_delete()
        kill_branch(graph, victim)
        return True

    def _guard(self, graph: Graph, node: FixedGuardNode) -> bool:
        condition = _const(node.condition)
        if condition is _MISS:
            return False
        if bool(condition) != node.negated:
            # Guard always passes: drop it.
            graph.remove_fixed(node)
            return True
        # Guard always fails: everything after it is unreachable.
        deopt = DeoptimizeNode(node.reason, state=node.state)
        graph.add(deopt)
        successor = node.next
        node.next = None
        predecessor = node.predecessor
        graph._replace_successor(predecessor, node, deopt)
        node.predecessor = None
        node.replace_at_usages(None)
        node.clear_inputs()
        node.safe_delete()
        kill_branch(graph, successor)
        return True

    def _ref_equals(self, graph: Graph, node: RefEqualsNode) -> bool:
        replacement = None
        if node.x is node.y:
            replacement = graph.constant(1)
        else:
            x, y = _const(node.x), _const(node.y)
            if x is not _MISS and y is not _MISS:
                replacement = graph.constant(1 if x is y else 0)
            elif (x is None and _non_null(node.y)) or \
                    (y is None and _non_null(node.x)):
                replacement = graph.constant(0)
        if replacement is None:
            return False
        graph.replace_fixed(node, replacement)
        return True

    def _is_null(self, graph: Graph, node: IsNullNode) -> bool:
        value = _const(node.value)
        if value is not _MISS:
            graph.replace_fixed(node,
                                graph.constant(1 if value is None else 0))
            return True
        if _non_null(node.value):
            graph.replace_fixed(node, graph.constant(0))
            return True
        return False


def _non_null(node: Optional[Node]) -> bool:
    if isinstance(node, (NewInstanceNode, NewArrayNode)):
        return True
    if isinstance(node, ConstantNode) and node.value is not None:
        return True
    return False
