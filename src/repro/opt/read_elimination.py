"""Block-local read elimination (load/store forwarding).

Graal's production pipeline folds read elimination into the Partial
Escape Analysis closure (PEAReadElimination); this phase implements the
memory-forwarding half as a standalone pass: within one basic block,

- a load of ``o.f`` after a store ``o.f = v`` becomes ``v``;
- a second load of ``o.f`` reuses the first load's value;
- the same for static fields and (same-index) array elements.

Invalidation is conservative: calls and monitor operations clear all
knowledge (they may mutate anything / act as barriers), and a store to
field ``f`` of *any* object invalidates every other object's ``f``
(two references may alias).  The analysis never crosses block
boundaries, which keeps it trivially sound.

Scalar replacement by PEA makes most of these loads disappear outright;
read elimination matters for *escaped* objects, whose "state of its
fields cannot be used" by PEA (Section 4) but whose memory is still
forwardable between side effects.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..ir.graph import Graph
from ..ir.node import Node
from ..ir.nodes import (ArrayLengthNode, InvokeNode, LoadFieldNode,
                        LoadIndexedNode, LoadStaticNode, MonitorEnterNode,
                        MonitorExitNode, NewArrayNode, NewInstanceNode,
                        StoreFieldNode, StoreIndexedNode, StoreStaticNode)
from ..scheduler.cfg import ControlFlowGraph
from .phase import Phase


class ReadEliminationPhase(Phase):
    name = "read-elimination"

    def run(self, graph: Graph) -> bool:
        if graph.start is None:
            return False
        cfg = ControlFlowGraph(graph)
        changed = False
        for block in cfg.blocks:
            changed |= self._process_block(graph, block.nodes)
        return changed

    def _process_block(self, graph: Graph, nodes) -> bool:
        known: Dict[Tuple, Node] = {}
        lengths: Dict[Node, Node] = {}
        changed = False
        for node in list(nodes):
            if isinstance(node, LoadFieldNode):
                key = ("field", node.object, node.field.field_name)
                value = known.get(key)
                if value is not None:
                    graph.replace_fixed(node, value)
                    changed = True
                else:
                    known[key] = node
            elif isinstance(node, StoreFieldNode):
                self._invalidate_field(known, node.field.field_name,
                                       node.object)
                known[("field", node.object,
                       node.field.field_name)] = node.value
            elif isinstance(node, LoadStaticNode):
                key = ("static",
                       (node.field.class_name, node.field.field_name))
                value = known.get(key)
                if value is not None:
                    graph.replace_fixed(node, value)
                    changed = True
                else:
                    known[key] = node
            elif isinstance(node, StoreStaticNode):
                known[("static", (node.field.class_name,
                                  node.field.field_name))] = node.value
            elif isinstance(node, LoadIndexedNode):
                key = ("elem", node.array, node.index)
                value = known.get(key)
                if value is not None:
                    graph.replace_fixed(node, value)
                    changed = True
                else:
                    known[key] = node
            elif isinstance(node, StoreIndexedNode):
                # Any element store may alias any tracked element.
                for key in [k for k in known if k[0] == "elem"]:
                    del known[key]
                known[("elem", node.array, node.index)] = node.value
            elif isinstance(node, ArrayLengthNode):
                value = lengths.get(node.array)
                if value is not None:
                    graph.replace_fixed(node, value)
                    changed = True
                else:
                    lengths[node.array] = node
            elif isinstance(node, (InvokeNode, MonitorEnterNode,
                                   MonitorExitNode)):
                # Barrier: a callee / another thread may write anything.
                known.clear()
        return changed

    @staticmethod
    def _invalidate_field(known: Dict, field_name: str,
                          stored_object: Optional[Node]):
        """A store to ``o.f`` invalidates ``p.f`` for every possibly-
        aliasing ``p``.  Two distinct fresh allocations never alias."""
        for key in list(known):
            if key[0] != "field" or key[2] != field_name:
                continue
            other = key[1]
            if other is stored_object:
                continue  # rewritten by the caller
            if (isinstance(other, (NewInstanceNode, NewArrayNode))
                    and isinstance(stored_object,
                                   (NewInstanceNode, NewArrayNode))):
                continue  # distinct allocations cannot alias
            del known[key]
