"""Classic optimization phases."""

from .canonicalize import CanonicalizerPhase
from .conditional_elimination import ConditionalEliminationPhase
from .dce import DeadCodeEliminationPhase
from .gvn import GlobalValueNumberingPhase
from .inlining import InliningPhase, InliningPolicy
from .phase import Phase, PhasePlan, PhaseTiming
from .read_elimination import ReadEliminationPhase
from .stack_allocation import StackAllocationPhase
from .util import kill_branch, simplify_merge, sweep_floating

__all__ = [
    "CanonicalizerPhase", "ConditionalEliminationPhase",
    "DeadCodeEliminationPhase",
    "GlobalValueNumberingPhase", "InliningPhase", "InliningPolicy",
    "Phase", "PhasePlan", "PhaseTiming", "ReadEliminationPhase",
    "StackAllocationPhase",
    "kill_branch", "simplify_merge", "sweep_floating",
]
