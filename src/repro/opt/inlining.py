"""Inlining.

Replaces InvokeNodes by the callee's graph.  The policy is Graal-like but
simple: inline static/special calls and *monomorphic* virtual calls
(no loaded subclass overrides the resolved target — class hierarchy
analysis over our closed world), subject to callee-size, total-size and
depth budgets.

Mechanics worth noting:

- the callee's frame states get the invoke's ``state_after`` as their
  outer state, producing the FrameState chains of Section 2;
- a synchronized callee's monitor enter/exit nodes come with its graph
  (the graph builder inserts them), reproducing the paper's Listing 2;
- multiple returns merge through a new MergeNode + PhiNode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..bytecode.classfile import JMethod, Program
from ..bytecode.interpreter import Profile
from ..ir.graph import Graph
from ..ir.node import Node
from ..ir.nodes import (EndNode, FrameStateNode, InvokeNode, MergeNode,
                        ParameterNode, PhiNode, ReturnNode, StartNode)
from .phase import Phase


@dataclass
class InliningPolicy:
    """Budgets controlling the inliner."""

    #: Max callee bytecode size eligible for inlining.
    max_callee_size: int = 80
    #: Smaller limit for deeper call chains.
    max_callee_size_deep: int = 40
    #: Max inlining depth.
    max_depth: int = 9
    #: Stop growing the caller graph beyond this many nodes.
    max_graph_size: int = 4000
    #: Never inline recursive calls (any cycle through the chain).
    allow_recursive: bool = False


class InliningPhase(Phase):
    name = "inlining"

    def __init__(self, program: Program,
                 policy: Optional[InliningPolicy] = None,
                 profile: Optional[Profile] = None,
                 speculate_branches: bool = False,
                 speculation_min_samples: int = 50,
                 speculate_types: bool = True):
        self.program = program
        self.policy = policy or InliningPolicy()
        self.profile = profile
        self.speculate_branches = speculate_branches
        self.speculation_min_samples = speculation_min_samples
        #: Profile-guided devirtualization: a CHA-polymorphic call whose
        #: profile is monomorphic to a *leaf* class is inlined behind a
        #: type-speculation guard (deopt re-dispatches honestly).
        self.speculate_types = speculate_types
        #: (caller qualified name, count) of decisions, for diagnostics.
        self.inlined: List[str] = []

    # -- policy ------------------------------------------------------------

    def _resolve_target(self, invoke: InvokeNode):
        """Returns (method, guard_class_or_None), or None to skip."""
        target = self.program.resolve_method(invoke.target.class_name,
                                             invoke.target.method_name)
        if target.is_native:
            return None
        if invoke.kind == "virtual" and self.program.has_overrides(target):
            return self._speculative_target(invoke)
        return (target, None)

    def _speculative_target(self, invoke: InvokeNode):
        """CHA says polymorphic; the profile may still be monomorphic
        to a leaf class -> inline behind a type guard."""
        if not (self.speculate_types and self.profile is not None
                and invoke.source_method is not None
                and invoke.state_before is not None):
            return None
        class_name = self.profile.monomorphic_receiver(
            invoke.source_method, invoke.bci,
            self.speculation_min_samples)
        if class_name is None:
            return None
        if self.program.has_subclasses(class_name):
            return None  # instanceof would not prove the exact type
        resolved = self.program.resolve_virtual(
            class_name, invoke.target.method_name)
        if resolved.is_native:
            return None
        return (resolved, class_name)

    def _should_inline(self, graph: Graph, target: JMethod,
                       depth: int) -> bool:
        if depth >= self.policy.max_depth:
            return False
        if graph.node_count() >= self.policy.max_graph_size:
            return False
        limit = (self.policy.max_callee_size if depth <= 2
                 else self.policy.max_callee_size_deep)
        return len(target.code) <= limit

    # -- driver --------------------------------------------------------------

    def run(self, graph: Graph) -> bool:
        changed = False
        # Worklist of (invoke, depth, call chain for recursion detection).
        root = graph.method
        worklist: List[Tuple[InvokeNode, int, Tuple[str, ...]]] = [
            (invoke, 0, (root.qualified_name,) if root else ())
            for invoke in graph.nodes_of(InvokeNode)]
        while worklist:
            invoke, depth, chain = worklist.pop(0)
            if invoke.graph is not graph:
                continue
            resolution = self._resolve_target(invoke)
            if resolution is None:
                continue
            target, guard_class = resolution
            if not self.policy.allow_recursive and \
                    target.qualified_name in chain:
                continue
            if not self._should_inline(graph, target, depth):
                continue
            if guard_class is not None:
                self._insert_type_guard(graph, invoke, guard_class)
            new_invokes = self.inline(graph, invoke, target)
            self.inlined.append(target.qualified_name)
            changed = True
            child_chain = chain + (target.qualified_name,)
            for child in new_invokes:
                worklist.append((child, depth + 1, child_chain))
        return changed

    # -- mechanics ---------------------------------------------------------------

    def _insert_type_guard(self, graph: Graph, invoke: InvokeNode,
                           class_name: str):
        from ..ir.nodes import FixedGuardNode, InstanceOfNode
        receiver = invoke.arguments[0]
        check = InstanceOfNode(class_name, value=receiver)
        graph.insert_before(invoke, check)
        guard = FixedGuardNode("type_speculation", condition=check,
                               state=invoke.state_before)
        graph.insert_before(invoke, guard)

    def inline(self, graph: Graph, invoke: InvokeNode,
               target: JMethod) -> List[InvokeNode]:
        """Replace *invoke* with *target*'s graph; returns the invokes
        that came in with the callee (inlining candidates themselves)."""
        from ..frontend.graph_builder import build_graph

        callee_graph = build_graph(self.program, target, self.profile,
                                   self.speculate_branches,
                                   self.speculation_min_samples)
        callee_nodes = list(callee_graph.nodes())

        outer_state = invoke.state_after
        arguments = list(invoke.arguments)

        # Adopt every callee node into the caller graph.
        for node in callee_nodes:
            graph.adopt(node)

        # Wire parameters to arguments.
        for param in callee_graph.parameters:
            param.replace_at_usages(arguments[param.index])
            param.clear_inputs()
            param.safe_delete()

        # Chain frame states: callee states have no outer yet.
        for node in callee_nodes:
            if isinstance(node, FrameStateNode) and node.graph is graph:
                if node.outer is None:
                    node.outer = outer_state

        # Splice control flow.
        start = callee_graph.start
        first = start.next
        start.next = None
        predecessor = invoke.predecessor
        successor = invoke.next
        invoke.next = None
        graph._replace_successor(predecessor, invoke, first)
        start.safe_delete()

        returns = [n for n in callee_nodes
                   if isinstance(n, ReturnNode) and n.graph is graph]
        replacement: Optional[Node] = None
        if len(returns) == 1:
            ret = returns[0]
            replacement = ret.value
            ret_predecessor = ret.predecessor
            ret.predecessor = None
            graph._replace_successor(ret_predecessor, ret, successor)
            ret.clear_inputs()
            ret.safe_delete()
        elif returns:
            merge = graph.add(MergeNode())
            values = []
            for ret in returns:
                end = graph.add(EndNode())
                ret_predecessor = ret.predecessor
                ret.predecessor = None
                graph._replace_successor(ret_predecessor, ret, end)
                merge.add_end(end)
                values.append(ret.value)
                ret.clear_inputs()
                ret.safe_delete()
            merge.next = successor
            if invoke.has_value:
                if all(v is values[0] for v in values):
                    replacement = values[0]
                else:
                    phi = PhiNode(merge=merge)
                    phi.values.extend(values)
                    graph.add(phi)
                    replacement = phi
        else:
            # The callee never returns (always deopts/throws): everything
            # after the call site is unreachable.
            from .util import kill_branch
            kill_branch(graph, successor)

        invoke.replace_at_usages(replacement)
        invoke.predecessor = None
        invoke.clear_inputs()
        invoke.clear_successors()
        invoke.safe_delete()

        return [n for n in callee_nodes
                if isinstance(n, InvokeNode) and n.graph is graph]
