"""The optimization-phase framework."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..ir.graph import Graph


class Phase:
    """Base class: a transformation over one graph."""

    #: Override with a human-readable phase name.
    name = "phase"

    def run(self, graph: Graph) -> bool:
        """Apply the phase; returns True if the graph changed."""
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__}>"


@dataclass
class PhaseTiming:
    phase: str
    seconds: float
    changed: bool


class PhasePlan:
    """An ordered list of phases applied to a graph, with verification
    after every phase (compiler bugs surface immediately)."""

    def __init__(self, phases: Optional[List[Phase]] = None,
                 verify_between: bool = True):
        self.phases: List[Phase] = list(phases) if phases else []
        self.verify_between = verify_between
        self.timings: List[PhaseTiming] = []

    def append(self, phase: Phase) -> "PhasePlan":
        self.phases.append(phase)
        return self

    def run(self, graph: Graph) -> Graph:
        for phase in self.phases:
            started = time.perf_counter()
            changed = bool(phase.run(graph))
            self.timings.append(PhaseTiming(
                phase.name, time.perf_counter() - started, changed))
            if self.verify_between:
                graph.verify()
        return graph
