"""The optimization-phase framework."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..ir.graph import Graph


class Phase:
    """Base class: a transformation over one graph."""

    #: Override with a human-readable phase name.
    name = "phase"

    def run(self, graph: Graph) -> bool:
        """Apply the phase; returns True if the graph changed."""
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__}>"


@dataclass
class PhaseTiming:
    phase: str
    seconds: float
    changed: bool


class PhasePlan:
    """An ordered list of phases applied to a graph, with verification
    after every phase (compiler bugs surface immediately).

    ``verify_between`` runs the cheap structural check
    (:meth:`Graph.verify`) after each phase; ``verify_ir`` additionally
    runs the full :class:`repro.verify.GraphVerifier` invariant suite
    (SSA dominance, CFG shape, frame-state completeness, PEA
    invariants) on the input graph and after every phase, attributing
    any violation to the phase that introduced it."""

    def __init__(self, phases: Optional[List[Phase]] = None,
                 verify_between: bool = True, verify_ir: bool = False):
        self.phases: List[Phase] = list(phases) if phases else []
        self.verify_between = verify_between
        self.verify_ir = verify_ir
        self.timings: List[PhaseTiming] = []

    def append(self, phase: Phase) -> "PhasePlan":
        self.phases.append(phase)
        return self

    def _verify(self, graph: Graph, phase_name: str):
        if self.verify_ir:
            from ..verify.verifier import verify_graph
            verify_graph(graph, phase=phase_name)
        elif self.verify_between:
            graph.verify()

    def run(self, graph: Graph) -> Graph:
        if self.verify_ir:
            self._verify(graph, "graph-building")
        for phase in self.phases:
            started = time.perf_counter()
            changed = bool(phase.run(graph))
            self.timings.append(PhaseTiming(
                phase.name, time.perf_counter() - started, changed))
            self._verify(graph, phase.name)
        return graph
