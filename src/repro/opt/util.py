"""Graph-surgery helpers shared by optimization phases."""

from __future__ import annotations

from typing import List, Set

from ..ir.graph import Graph
from ..ir.node import FloatingNode, IRError, Node
from ..ir.nodes import (ConstantNode, EndNode, FrameStateNode,
                        LoopBeginNode, LoopEndNode, MergeNode,
                        ParameterNode, PhiNode)


def sweep_floating(graph: Graph) -> int:
    """Delete floating nodes with no usages, transitively.

    Parameters are kept (they are referenced by ``graph.parameters``);
    everything else — orphaned arithmetic, frame states, phis of deleted
    merges — goes.  Returns the number of deleted nodes.
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        for node in graph.nodes():
            if node.is_fixed or not node.has_no_usages():
                continue
            if isinstance(node, ParameterNode) and \
                    node in graph.parameters:
                continue
            node.clear_inputs()
            node.safe_delete()
            removed += 1
            changed = True
    return removed


def kill_branch(graph: Graph, root: Node) -> None:
    """Delete the control-flow subgraph rooted at *root*.

    *root* must already be detached from its predecessor.  Merges that
    remain reachable from elsewhere lose the corresponding end (and phi
    inputs); merges that lose all predecessors die with the branch.
    """
    dead: List[Node] = []
    dead_set: Set[Node] = set()
    worklist: List[Node] = [root]
    while worklist:
        node = worklist.pop()
        if node.graph is not graph or node in dead_set:
            continue
        if isinstance(node, EndNode):
            merge = node.merge()
            dead.append(node)
            dead_set.add(node)
            if merge is None or merge in dead_set:
                continue
            merge.remove_end(node)
            # A merge (or loop) with no forward ends left is unreachable.
            if len(merge.ends) == 0:
                worklist.append(merge)
        elif isinstance(node, LoopEndNode):
            loop_begin = node.loop_begin
            dead.append(node)
            dead_set.add(node)
            if loop_begin is None or loop_begin in dead_set:
                continue
            index = loop_begin.end_index(node)
            for phi in list(loop_begin.phis()):
                phi.values.pop(index)
            loop_begin.loop_ends.remove(node)
        else:
            dead.append(node)
            dead_set.add(node)
            for succ in node.successors():
                worklist.append(succ)
            if isinstance(node, MergeNode):
                # The merge dies: its phis die with it.
                for phi in list(node.phis()):
                    if phi not in dead_set:
                        dead.append(phi)
                        dead_set.add(phi)
                if isinstance(node, LoopBeginNode):
                    for loop_end in list(node.loop_ends):
                        worklist.append(loop_end)

    # Physically delete: break all edges first, then unregister.
    for node in dead:
        node.clear_successors()
        node.predecessor = None
    for node in dead:
        node.replace_at_usages(None)
        node.clear_inputs()
    for node in dead:
        if node.graph is graph:
            graph._unregister(node)
    sweep_floating(graph)


def simplify_merge(graph: Graph, merge: MergeNode) -> None:
    """Collapse a merge with exactly one end into plain control flow,
    replacing its single-input phis by their values.  Loop headers
    qualify only once every back edge is gone (a dead loop)."""
    if isinstance(merge, LoopBeginNode) and len(merge.loop_ends) > 0:
        return
    if len(merge.ends) != 1:
        return
    end = merge.ends[0]
    for phi in list(merge.phis()):
        value = phi.values[0]
        phi.replace_at_usages(value)
        phi.clear_inputs()
        phi.safe_delete()
    predecessor = end.predecessor
    successor = merge.next
    merge.next = None
    merge.remove_end(end)
    end.predecessor = None
    graph._replace_successor(predecessor, end, successor)
    end.replace_at_usages(None)
    end.safe_delete()
    merge.replace_at_usages(None)
    merge.predecessor = None
    merge.clear_inputs()
    merge.safe_delete()
