"""repro — Partial Escape Analysis and Scalar Replacement for Java.

A full-system reproduction of Stadler, Würthinger & Mössenböck (CGO
2014) in Python: a JVM-like bytecode substrate, a Java-like source
language, a Graal-style sea-of-nodes SSA IR with speculative
optimization and deoptimization, the Partial Escape Analysis phase (the
paper's contribution) plus a flow-insensitive equi-escape-sets baseline,
a simulated-machine runtime, a tiered JIT VM, and a benchmark suite that
regenerates the shape of the paper's Table 1.

Quickstart (the stable facade lives in :mod:`repro.api`)::

    from repro import api

    prog = api.compile(JAVA_LIKE_SOURCE)   # PEA config by default
    result = prog.run("Main.run", 1000)
    print(prog.heap_stats())           # allocations, bytes, monitors

The deeper modules stay importable (``from repro import VM, ...``) for
research code, but :mod:`repro.api` is the stability contract.
"""

from . import api
from .api import CompiledProgram
from .bytecode import (Heap, HeapStats, Interpreter, Program,
                       disassemble_method, disassemble_program,
                       verify_program)
from .frontend import build_graph
from .ir import Graph, dump_graph, to_dot
from .jit import (VM, Compiler, CompilerConfig, EscapeAnalysisKind,
                  VMListener)
from .lang import compile_source
from .opt import (CanonicalizerPhase, DeadCodeEliminationPhase,
                  GlobalValueNumberingPhase, InliningPhase, PhasePlan)
from .pea import EquiEscapePhase, PartialEscapePhase, PEAResult
from .runtime import CostModel, ExecutionStats

__version__ = "1.0.0"

__all__ = [
    "api", "CompiledProgram", "VMListener",
    "Heap", "HeapStats", "Interpreter", "Program", "disassemble_method",
    "disassemble_program", "verify_program", "build_graph", "Graph",
    "dump_graph", "to_dot", "VM", "Compiler", "CompilerConfig",
    "EscapeAnalysisKind", "compile_source", "CanonicalizerPhase",
    "DeadCodeEliminationPhase", "GlobalValueNumberingPhase",
    "InliningPhase", "PhasePlan", "EquiEscapePhase", "PartialEscapePhase",
    "PEAResult", "CostModel", "ExecutionStats", "__version__",
]
