"""A generic worklist dataflow solver.

The solver is parameterized twice:

- a **CFG adapter** supplies blocks, edges and an iteration order.  Two
  adapters cover the repository's substrates: :class:`BytecodeCFG` wraps
  the bytecode :class:`~repro.frontend.blocks.BlockGraph` (blocks are
  integer indices), :class:`IRCFG` wraps the scheduled
  :class:`~repro.scheduler.cfg.ControlFlowGraph` (blocks are
  :class:`~repro.scheduler.cfg.IRBlock` objects).  Any object with the
  same four methods works.

- an **analysis** supplies the lattice: ``bottom()``, ``join(a, b)``,
  ``transfer(block, state)`` and optionally ``entry_state()``,
  ``widen(old, new)`` (applied at loop headers after ``widen_after``
  visits) and ``equal(a, b)``.

``solve`` iterates transfer functions to a fixed point and returns the
per-block in/out states plus the iteration count — which the property
tests use to check idempotence (re-solving from the fixed point takes
exactly one sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional

Block = Hashable


class BytecodeCFG:
    """Adapter over :class:`repro.frontend.blocks.BlockGraph`.

    Blocks are the graph's integer block indices; unreachable blocks are
    excluded.
    """

    def __init__(self, block_graph):
        self.block_graph = block_graph

    def blocks(self) -> List[int]:
        return list(self.block_graph.rpo)

    def successors(self, block: int) -> List[int]:
        return list(self.block_graph.blocks[block].successors)

    def predecessors(self, block: int) -> List[int]:
        return [p for p in self.block_graph.blocks[block].predecessors
                if p in self.block_graph.reachable]

    def is_loop_header(self, block: int) -> bool:
        return self.block_graph.blocks[block].is_loop_header


class IRCFG:
    """Adapter over :class:`repro.scheduler.cfg.ControlFlowGraph`.

    Blocks are :class:`IRBlock` objects (hashable by identity).
    """

    def __init__(self, cfg):
        self.cfg = cfg

    def blocks(self) -> List[Any]:
        return list(self.cfg.rpo)

    def successors(self, block) -> List[Any]:
        return list(block.successors)

    def predecessors(self, block) -> List[Any]:
        return list(block.predecessors)

    def is_loop_header(self, block) -> bool:
        return block.is_loop_header


@dataclass
class DataflowResult:
    """Per-block fixed-point states."""

    block_in: Dict[Block, Any] = field(default_factory=dict)
    block_out: Dict[Block, Any] = field(default_factory=dict)
    #: Total transfer-function applications until the fixed point.
    iterations: int = 0

    def state_in(self, block: Block) -> Any:
        return self.block_in[block]

    def state_out(self, block: Block) -> Any:
        return self.block_out[block]


class _Solver:
    """Shared worklist machinery; direction decided by subclasses."""

    #: Visits to a loop-header block before ``widen`` kicks in.
    widen_after = 8

    def __init__(self, cfg, analysis):
        self.cfg = cfg
        self.analysis = analysis

    # -- direction hooks (overridden by Forward/Backward) -------------------

    def _order(self) -> List[Block]:
        raise NotImplementedError

    def _sources(self, block: Block) -> List[Block]:
        """Blocks whose dataflow feeds *block*."""
        raise NotImplementedError

    def _sinks(self, block: Block) -> List[Block]:
        """Blocks fed by *block*'s dataflow."""
        raise NotImplementedError

    # -- the fixed-point loop ------------------------------------------------

    def solve(self) -> DataflowResult:
        analysis = self.analysis
        order = self._order()
        positions = {block: i for i, block in enumerate(order)}
        result = DataflowResult()
        entry_state = getattr(analysis, "entry_state",
                              analysis.bottom)()
        equal: Callable[[Any, Any], bool] = getattr(
            analysis, "equal", lambda a, b: a == b)
        widen = getattr(analysis, "widen", None)
        is_header = getattr(self.cfg, "is_loop_header", lambda b: False)

        visits: Dict[Block, int] = {}
        worklist = list(order)
        queued = set(worklist)
        while worklist:
            # Process in iteration order: pull the earliest queued block.
            worklist.sort(key=positions.__getitem__)
            block = worklist.pop(0)
            queued.discard(block)

            sources = self._sources(block)
            if sources:
                state = None
                for source in sources:
                    source_out = result.block_out.get(source)
                    if source_out is None:
                        continue
                    state = source_out if state is None else \
                        analysis.join(state, source_out)
                if state is None:
                    state = analysis.bottom()
            else:
                state = entry_state

            visits[block] = visits.get(block, 0) + 1
            if widen is not None and is_header(block) and \
                    visits[block] > self.widen_after:
                previous = result.block_in.get(block)
                if previous is not None:
                    state = widen(previous, state)

            result.block_in[block] = state
            out = analysis.transfer(block, state)
            result.iterations += 1
            previous_out = result.block_out.get(block)
            if previous_out is not None and equal(previous_out, out):
                continue
            result.block_out[block] = out
            for sink in self._sinks(block):
                if sink not in queued:
                    queued.add(sink)
                    worklist.append(sink)
        return result


class ForwardSolver(_Solver):
    """in[b] = join(out[preds]); entry blocks get ``entry_state()``."""

    def _order(self) -> List[Block]:
        return self.cfg.blocks()

    def _sources(self, block: Block) -> List[Block]:
        return self.cfg.predecessors(block)

    def _sinks(self, block: Block) -> List[Block]:
        return self.cfg.successors(block)


class BackwardSolver(_Solver):
    """in[b] = join(out[succs]); exit blocks get ``entry_state()``."""

    def _order(self) -> List[Block]:
        return list(reversed(self.cfg.blocks()))

    def _sources(self, block: Block) -> List[Block]:
        return self.cfg.successors(block)

    def _sinks(self, block: Block) -> List[Block]:
        return self.cfg.predecessors(block)


def solve_forward(cfg, analysis) -> DataflowResult:
    return ForwardSolver(cfg, analysis).solve()


def solve_backward(cfg, analysis) -> DataflowResult:
    return BackwardSolver(cfg, analysis).solve()
