"""Connection-graph escape analysis — the cheap tier.

This is the CoreCLR-``objectalloc`` style analysis: build a *connection
graph* whose directed edges ``u -> v`` mean "if ``u`` escapes, ``v``
escapes", condense it with Tarjan's strongly-connected-components
algorithm, seed *escape roots* (stores to statics, returned values,
arguments to unmodeled calls, references from node categories we do not
model) and propagate escape over the condensation.  Allocations whose
component is not reachable from a root never escape and are eligible
for stack allocation and lock elision.

Relative to the two analyses that already exist here:

* It is strictly cheaper than :class:`repro.pea.PartialEscapePhase` —
  flow-insensitive, no virtual-object state, no materialization, a
  single linear pass plus one SCC condensation — which makes it the
  right tier for cold code and for the compile service's latency
  budget.
* It is at least as precise as the union-find
  :class:`repro.pea.equi_escape.EquiEscapeSets` baseline: a union-find
  must merge a container with everything stored into it, so an escaping
  *content* poisons its (otherwise local) container.  The connection
  graph keeps the store edge one-way (``container -> content``): an
  escaping content never taints the container.

Like the other analyses, references from frame states and deoptimize
nodes do **not** escape (they are rematerialized on deopt — Kotzmann &
Mössenböck's insight, which the paper's PEA builds on), and there are
no thrown exceptions in the language yet, so "thrown" roots reduce to
the deopt case.  Interprocedural precision comes from the PR 5 escape
summaries: a summarized callee contributes ``flows_to``/``returned``
edges at the call site instead of a worst-case escape root.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set

from ..bytecode.classfile import Program
from ..ir.graph import Graph
from ..ir.node import FixedWithNextNode, Node
from ..ir.nodes import (ArrayLengthNode, BeginNode, ConstantNode,
                        DeoptimizeNode, EscapeObjectStateNode,
                        FixedGuardNode, FrameStateNode,
                        IfNode, InstanceOfNode, InvokeNode, IsNullNode,
                        LoadFieldNode, LoadIndexedNode, LoadStaticNode,
                        MonitorEnterNode, MonitorExitNode, NewArrayNode,
                        NewInstanceNode, PhiNode, RefEqualsNode,
                        ReturnNode, StoreFieldNode, StoreIndexedNode,
                        StoreStaticNode)
from ..opt.phase import Phase


def tarjan_sccs(vertices: Iterable[Hashable],
                successors: Callable[[Hashable], Iterable[Hashable]]
                ) -> List[List[Hashable]]:
    """Iterative Tarjan strongly-connected components.

    Returns the components in **reverse topological order** of the
    condensation (every component is emitted before any of its
    predecessors), which is the order Tarjan produces naturally.  The
    implementation is an explicit work-stack state machine so deep
    graphs cannot overflow Python's recursion limit.
    """
    index: Dict[Hashable, int] = {}
    lowlink: Dict[Hashable, int] = {}
    on_stack: Set[Hashable] = set()
    stack: List[Hashable] = []
    components: List[List[Hashable]] = []
    counter = 0

    for root in vertices:
        if root in index:
            continue
        # Each work item is (vertex, iterator over remaining successors).
        work = [(root, iter(list(successors(root))))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            vertex, successor_iter = work[-1]
            advanced = False
            for successor in successor_iter:
                if successor not in index:
                    index[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (successor, iter(list(successors(successor)))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[vertex] = min(lowlink[vertex],
                                          index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[vertex])
            if lowlink[vertex] == index[vertex]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member is vertex:
                        break
                components.append(component)
    return components


class ConnectionGraph:
    """One method's connection graph.

    ``build()`` walks the IR once collecting directed escape edges and
    roots; ``analyze()`` condenses and propagates, returning the set of
    allocation nodes that never escape.
    """

    #: Node types whose *reference* inputs do not make an object escape
    #: (same safe-user set as the equi-escape baseline: pure reads,
    #: identity tests, monitors, frame states, guards).  An
    #: ``EscapeObjectStateNode`` is a frame-state appendage — the deopt
    #: snapshot of a still-virtual PEA object; a reference from one is
    #: no more an escape than a reference from the frame state itself,
    #: and treating it as unmodeled would root every allocation PEA
    #: materialized next to a surviving virtual object.
    _SAFE_USERS = (LoadFieldNode, ArrayLengthNode, RefEqualsNode,
                   IsNullNode, InstanceOfNode, MonitorEnterNode,
                   MonitorExitNode, FrameStateNode,
                   EscapeObjectStateNode, FixedGuardNode,
                   IfNode, DeoptimizeNode, LoadIndexedNode)
    #: Node types that are modeled explicitly by the edge builder.
    _MODELED_USERS = (PhiNode, StoreFieldNode, StoreIndexedNode,
                      StoreStaticNode, ReturnNode, InvokeNode)

    def __init__(self, graph: Graph, program: Optional[Program] = None,
                 summaries=None):
        self.graph = graph
        self.program = program
        self.summaries = summaries
        #: ``edges[u]`` = nodes that escape whenever ``u`` escapes.
        self.edges: Dict[Node, List[Node]] = {}
        self.roots: Set[Node] = set()
        self.allocations: List[Node] = []
        #: Invoke results that alias a tracked argument (``returned``
        #: summaries); they get the same unmodeled-user sweep as
        #: allocations.
        self.result_aliases: List[Node] = []
        self._built = False

    # -- construction ---------------------------------------------------

    def _add_edge(self, source: Optional[Node], target: Optional[Node]):
        if source is None or target is None or source is target:
            return
        if isinstance(target, ConstantNode):
            return
        self.edges.setdefault(source, []).append(target)

    def _add_root(self, node: Optional[Node]):
        if node is None or isinstance(node, ConstantNode):
            return
        self.roots.add(node)

    def build(self) -> "ConnectionGraph":
        if self._built:
            return self
        self._built = True
        for node in self.graph.nodes():
            if isinstance(node, (NewInstanceNode, NewArrayNode)):
                self.allocations.append(node)
            elif isinstance(node, PhiNode):
                # A phi is an alias of each of its inputs; escape flows
                # both ways so a phi group behaves exactly like PEA's
                # merge-point materialization rule (if any member
                # escapes, every allocation flowing into the phi does).
                for value in node.values:
                    if value is not node and self._is_tracked(value):
                        self._add_edge(node, value)
                        self._add_edge(value, node)
            elif isinstance(node, StoreFieldNode):
                self._store_edge(node.object, node.value,
                                 self._is_reference_field(node))
            elif isinstance(node, StoreIndexedNode):
                self._store_edge(node.array, node.value,
                                 self._is_reference_array(node.array))
            elif isinstance(node, StoreStaticNode):
                self._add_root(node.value)
            elif isinstance(node, ReturnNode):
                self._add_root(node.value)
            elif isinstance(node, InvokeNode):
                self._process_invoke(node)
        # References from node categories the builder does not model
        # escape conservatively.
        for tracked in self.allocations + self.result_aliases:
            for user in tracked.usages:
                if not isinstance(user,
                                  self._SAFE_USERS + self._MODELED_USERS):
                    self._add_root(tracked)
        # Phis rooted (partly) in references of unknown provenance
        # (parameters, loads, unsummarized call results) taint the phi —
        # and through the bidirectional phi edges, its members.
        for node in self.graph.nodes():
            if not isinstance(node, PhiNode):
                continue
            for value in node.values:
                if value is None or value is node:
                    continue
                if not isinstance(value, (NewInstanceNode, NewArrayNode,
                                          PhiNode, ConstantNode)):
                    if self._holds_reference(value):
                        self._add_root(node)
        return self

    def _store_edge(self, container: Optional[Node],
                    value: Optional[Node], is_reference: bool):
        """A store is the one-way edge: content escapes if the
        container does — never the other way around."""
        if not is_reference or not self._is_tracked(value):
            return
        if container is None:
            return
        if isinstance(container, (NewInstanceNode, NewArrayNode,
                                  PhiNode)):
            self._add_edge(container, value)
        else:
            # Stored into a container outside our tracking (parameter,
            # load, call result): the value is reachable from unknown
            # code.
            self._add_root(value)

    def _process_invoke(self, node: InvokeNode):
        summary = None
        if self.summaries is not None:
            summary = self.summaries.summary_for_call(node.target)
        if summary is None or summary.is_top:
            for argument in node.arguments:
                self._add_root(argument)
            return
        for position, argument in enumerate(node.arguments):
            if argument is None or isinstance(argument, ConstantNode):
                continue
            param = summary.param(position)
            if param.captured:
                self._add_root(argument)
                continue
            if not self._is_tracked(argument):
                continue
            for target in param.flows_to:
                if target < len(node.arguments) and \
                        self._is_tracked(node.arguments[target]):
                    # Stored into the target parameter: escape flows
                    # from that container to this argument.
                    self._add_edge(node.arguments[target], argument)
                else:
                    self._add_root(argument)
            if param.returned:
                # The call result aliases the argument.
                self._add_edge(node, argument)
                self.result_aliases.append(node)

    # -- condensation + propagation -------------------------------------

    def condensation(self) -> List[List[Node]]:
        """SCCs of the connection graph in reverse topological order."""
        self.build()
        vertices: List[Node] = []
        seen: Set[Node] = set()
        for node in list(self.edges) + list(self.roots) + \
                self.allocations + self.result_aliases:
            if node not in seen:
                seen.add(node)
                vertices.append(node)
        return tarjan_sccs(
            vertices, lambda v: self.edges.get(v, ()))

    def escaped_nodes(self) -> Set[Node]:
        """All nodes reachable from an escape root along the edges."""
        components = self.condensation()
        component_of: Dict[Node, int] = {}
        for position, component in enumerate(components):
            for member in component:
                component_of[member] = position
        escaped_components: Set[int] = {
            position for position, component in enumerate(components)
            if any(member in self.roots for member in component)}
        # Tarjan emits reverse topological order, so iterating
        # back-to-front visits every component after all of its
        # predecessors: one pass propagates escape along ``u -> v``.
        for position in range(len(components) - 1, -1, -1):
            if position not in escaped_components:
                continue
            for member in components[position]:
                for successor in self.edges.get(member, ()):
                    escaped_components.add(component_of[successor])
        escaped: Set[Node] = set()
        for position in escaped_components:
            escaped.update(components[position])
        return escaped

    def analyze(self) -> Set[Node]:
        """The allocations that never escape."""
        escaped = self.escaped_nodes()
        return {allocation for allocation in self.allocations
                if allocation not in escaped}

    # -- helpers --------------------------------------------------------

    def _is_tracked(self, node: Optional[Node]) -> bool:
        return isinstance(node, (NewInstanceNode, NewArrayNode, PhiNode))

    def _is_reference_field(self, store: StoreFieldNode) -> bool:
        if self.program is None:
            return True
        try:
            jfield = self.program.resolve_field(store.field.class_name,
                                                store.field.field_name)
        except Exception:  # noqa: BLE001 - unresolved: stay conservative
            return True
        return jfield.type_name not in ("int", "boolean")

    @staticmethod
    def _is_reference_array(array: Optional[Node]) -> bool:
        if isinstance(array, NewArrayNode):
            return array.elem_type not in ("int", "boolean")
        return True

    @staticmethod
    def _holds_reference(node: Node) -> bool:
        return isinstance(node, (LoadFieldNode, LoadIndexedNode,
                                 LoadStaticNode, InvokeNode)) or \
            type(node).__name__ == "ParameterNode"


#: Node types that may appear between an elidable monitor enter/exit
#: pair.  The critical exclusions are anything that can *deoptimize*
#: (FixedGuardNode, DeoptimizeNode) or call out (InvokeNode): after a
#: deopt the interpreter would execute the bytecode ``monitorexit`` on
#: an object whose ``monitorenter`` was elided and trap with
#: ``IllegalMonitorState``.  PEA avoids this by rematerializing the
#: lock depth with the virtual object; this cheap tier simply refuses
#: the pair.
_ELISION_SAFE_BETWEEN = (LoadFieldNode, StoreFieldNode, LoadStaticNode,
                         StoreStaticNode, LoadIndexedNode,
                         StoreIndexedNode, ArrayLengthNode,
                         NewInstanceNode, NewArrayNode, BeginNode,
                         MonitorEnterNode, MonitorExitNode)

#: Bound on the straight-line walk between enter and exit; keeps the
#: phase linear on pathological graphs.
_ELISION_WALK_LIMIT = 64


class ConnGraphLockElisionPhase(Phase):
    """Lock elision for the connection-graph tier.

    Monitors on allocations the connection graph proves non-escaping
    are thread-local, so the enter/exit pair is a no-op.  Without PEA's
    virtual objects there is no lock-depth rematerialization on deopt,
    so only *straight-line, deopt-free* pairs are elided: the walk from
    ``monitorenter`` along ``next`` must reach the matching
    ``monitorexit`` through side-effect-only nodes (no guards, no
    deopts, no calls, no control flow).
    """

    name = "conngraph-lock-elision"

    def __init__(self, program: Program, summaries=None):
        self.program = program
        self.summaries = summaries
        #: :class:`repro.pea.partial_escape.PEAResult` of the last run.
        self.last_result = None

    def run(self, graph: Graph) -> bool:
        # Imported lazily: repro.pea imports repro.analysis (the
        # summaries/diagnostics modules) during package init.
        from ..pea.partial_escape import PEAResult
        approved = ConnectionGraph(graph, self.program,
                                   summaries=self.summaries).analyze()
        removed_pairs = 0
        if approved:
            for enter in [n for n in graph.nodes()
                          if isinstance(n, MonitorEnterNode)]:
                if enter.object not in approved:
                    continue
                exit_node = self._straight_line_exit(enter)
                if exit_node is None:
                    continue
                graph.remove_fixed(exit_node)
                graph.remove_fixed(enter)
                removed_pairs += 1
        if removed_pairs:
            graph.verify()
        self.last_result = PEAResult(
            removed_monitor_pairs=removed_pairs)
        return removed_pairs > 0

    @staticmethod
    def _straight_line_exit(enter: MonitorEnterNode
                            ) -> Optional[MonitorExitNode]:
        depth = 0
        node = enter.next
        for _ in range(_ELISION_WALK_LIMIT):
            if node is None:
                return None
            if isinstance(node, MonitorEnterNode) and \
                    node.object is enter.object:
                depth += 1
            elif isinstance(node, MonitorExitNode) and \
                    node.object is enter.object:
                if depth == 0:
                    return node
                depth -= 1
            if not isinstance(node, _ELISION_SAFE_BETWEEN):
                return None
            if not isinstance(node, FixedWithNextNode):
                return None
            node = node.next
        return None
