"""Interprocedural escape summaries over the bytecode.

Closes PEA's intraprocedural precision gap: the paper materializes every
virtual object flowing into a non-inlined call ("any reference argument
of a non-inlined invoke escapes").  A per-method summary computed by
abstract interpretation (in the spirit of Hill & Spoto, and of
Kotzmann's no-escape / arg-escape / global-escape states) tells the
caller what the callee actually does with each parameter:

- **used / read** — observed (field loads, identity compares, type
  checks) but never given a new name;
- **written** — a field/element of the parameter's subgraph is stored;
- **locked** — a monitor is entered on the parameter's subgraph;
- **returned** — (part of) the parameter may be the return value;
- **flows_to** — stored into another parameter's subgraph (Kotzmann's
  *arg-escape*);
- **captured** — stored into a static, an untracked object, thrown, or
  passed to a callee that captures it (*global-escape*).

The per-method analysis tracks, for every stack/local slot, the *may*
set of parameter roots the value derives from (loads from a derived
object stay derived — the whole reachable subgraph shares its root's
fate).  It runs on the generic :class:`~repro.analysis.dataflow`
solver over the bytecode :class:`~repro.frontend.blocks.BlockGraph`.
The interprocedural layer fixpoints over the call graph starting from
bottom (all-empty summaries), which handles recursion: flags only ever
grow, so iteration terminates at the least fixed point.  Virtual
dispatch joins the summaries of the resolved target and every override.
Native methods and resolution failures are top (everything set).

Summaries are deliberately *call-site independent* so they can be
digested into the compilation-cache key and revalidated like
speculation facts (see :mod:`repro.jit.cache`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..bytecode.classfile import JMethod, Program
from ..bytecode.instructions import MethodRef
from ..bytecode.opcodes import Op
from ..frontend.blocks import BlockGraph
from .dataflow import BytecodeCFG, ForwardSolver

_EMPTY: FrozenSet[int] = frozenset()

#: Types that never carry object references.
_PRIMITIVE_TYPES = ("int", "boolean", "void")


class ParamEscape:
    """Classification lattice, least escaping first."""

    UNUSED = "unused"
    READONLY = "readonly"
    NO_ESCAPE = "no_escape"
    RETURNED = "returned"
    ARG_ESCAPE = "arg_escape"
    CAPTURED = "captured"


@dataclass(frozen=True)
class ParamSummary:
    """What a method may do with one parameter's object subgraph."""

    used: bool = False
    read: bool = False
    written: bool = False
    locked: bool = False
    returned: bool = False
    captured: bool = False
    #: Parameter indices this parameter's subgraph may be stored into.
    flows_to: Tuple[int, ...] = ()

    TOP: "ParamSummary" = None  # assigned below

    @property
    def classification(self) -> str:
        if self.captured:
            return ParamEscape.CAPTURED
        if self.flows_to:
            return ParamEscape.ARG_ESCAPE
        if self.returned:
            return ParamEscape.RETURNED
        if self.written or self.locked:
            return ParamEscape.NO_ESCAPE
        if self.read or self.used:
            return ParamEscape.READONLY
        return ParamEscape.UNUSED

    @property
    def is_captured(self) -> bool:
        return self.captured

    @property
    def borrowable(self) -> bool:
        """True when the callee never creates a new name for the object:
        a caller may pass a throwaway copy without observable effect."""
        return not (self.written or self.locked or self.returned
                    or self.captured or self.flows_to)

    def join(self, other: "ParamSummary") -> "ParamSummary":
        return ParamSummary(
            used=self.used or other.used,
            read=self.read or other.read,
            written=self.written or other.written,
            locked=self.locked or other.locked,
            returned=self.returned or other.returned,
            captured=self.captured or other.captured,
            flows_to=tuple(sorted(set(self.flows_to)
                                  | set(other.flows_to))))

    def token(self) -> str:
        bits = "".join("1" if flag else "0" for flag in (
            self.used, self.read, self.written, self.locked,
            self.returned, self.captured))
        flows = ",".join(str(i) for i in self.flows_to)
        return f"{bits}:{flows}"


ParamSummary.TOP = ParamSummary(used=True, read=True, written=True,
                                locked=True, returned=True,
                                captured=True)


@dataclass(frozen=True)
class MethodSummary:
    """Per-parameter summaries for one method (index = local slot of
    the parameter, receiver included for instance methods)."""

    params: Tuple[ParamSummary, ...]
    #: Top summaries come from natives / resolution failures / analysis
    #: bailouts and are never an optimization license.
    is_top: bool = False

    @classmethod
    def top(cls, param_count: int) -> "MethodSummary":
        return cls(tuple(ParamSummary.TOP for _ in range(param_count)),
                   is_top=True)

    @classmethod
    def bottom(cls, param_count: int) -> "MethodSummary":
        return cls(tuple(ParamSummary() for _ in range(param_count)))

    def param(self, index: int) -> ParamSummary:
        if 0 <= index < len(self.params):
            return self.params[index]
        return ParamSummary.TOP

    def join(self, other: "MethodSummary") -> "MethodSummary":
        if len(self.params) != len(other.params):
            width = max(len(self.params), len(other.params))
            return MethodSummary.top(width)
        return MethodSummary(
            tuple(a.join(b) for a, b in zip(self.params, other.params)),
            is_top=self.is_top or other.is_top)

    def digest(self) -> str:
        text = ";".join(p.token() for p in self.params)
        if self.is_top:
            text += ";TOP"
        return hashlib.sha256(text.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Per-method abstract interpretation
# ---------------------------------------------------------------------------


class _Flags:
    """Mutable flag accumulator for one method analysis run."""

    __slots__ = ("used", "read", "written", "locked", "returned",
                 "captured", "flows")

    def __init__(self, param_count: int):
        self.used = [False] * param_count
        self.read = [False] * param_count
        self.written = [False] * param_count
        self.locked = [False] * param_count
        self.returned = [False] * param_count
        self.captured = [False] * param_count
        self.flows: List[set] = [set() for _ in range(param_count)]

    def mark_read(self, roots: FrozenSet[int]):
        for root in roots:
            self.used[root] = True
            self.read[root] = True

    def mark(self, attr: str, roots: FrozenSet[int]):
        flags = getattr(self, attr)
        for root in roots:
            self.used[root] = True
            flags[root] = True

    def flow(self, value_roots: FrozenSet[int],
             container_roots: FrozenSet[int]):
        """A derived value is stored into *container*."""
        for root in value_roots:
            self.used[root] = True
            if not container_roots:
                # Untracked container (fresh object, call result, ...):
                # its fate is unknown — conservatively captured.
                self.captured[root] = True
            elif container_roots != frozenset((root,)):
                # May land in another parameter's subgraph.
                self.flows[root].update(container_roots - {root})

    def to_summary(self, param_count: int) -> MethodSummary:
        return MethodSummary(tuple(
            ParamSummary(used=self.used[i], read=self.read[i],
                         written=self.written[i], locked=self.locked[i],
                         returned=self.returned[i],
                         captured=self.captured[i],
                         flows_to=tuple(sorted(self.flows[i])))
            for i in range(param_count)))


class _SummaryAnalysis:
    """Dataflow analysis instance for one method: the state is
    ``(locals, stack)`` tuples of root sets, ``None`` = unreachable."""

    def __init__(self, method: JMethod, block_graph: BlockGraph,
                 flags: _Flags, database: "SummaryDatabase"):
        self.method = method
        self.block_graph = block_graph
        self.flags = flags
        self.database = database

    def bottom(self):
        return None

    def entry_state(self):
        locals_ = [_EMPTY] * self.method.max_locals
        for index, type_name in enumerate(self.method.param_types):
            if type_name not in _PRIMITIVE_TYPES:
                locals_[index] = frozenset((index,))
        return (tuple(locals_), ())

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        locals_a, stack_a = a
        locals_b, stack_b = b
        if len(stack_a) != len(stack_b):
            raise _AnalysisBailout("inconsistent stack depths at join")
        return (tuple(x | y for x, y in zip(locals_a, locals_b)),
                tuple(x | y for x, y in zip(stack_a, stack_b)))

    def transfer(self, block_index, state):
        if state is None:
            return None
        block = self.block_graph.blocks[block_index]
        locals_ = list(state[0])
        stack = list(state[1])
        for bci in range(block.start, block.end + 1):
            self._step(self.method.code[bci], locals_, stack)
        return (tuple(locals_), tuple(stack))

    # -- one instruction ----------------------------------------------------

    def _step(self, insn, locals_: List[FrozenSet[int]],
              stack: List[FrozenSet[int]]):
        op = insn.op
        flags = self.flags
        if op is Op.CONST:
            stack.append(_EMPTY)
        elif op is Op.LOAD:
            stack.append(locals_[insn.operand])
        elif op is Op.STORE:
            locals_[insn.operand] = stack.pop()
        elif op is Op.POP:
            stack.pop()
        elif op is Op.DUP:
            stack.append(stack[-1])
        elif op is Op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]
        elif op in _ARITH_BINARY:
            stack.pop()
            stack.pop()
            stack.append(_EMPTY)
        elif op is Op.NEG:
            stack.pop()
            stack.append(_EMPTY)
        elif op is Op.GOTO:
            pass
        elif op in _INT_BRANCHES:
            stack.pop()
            stack.pop()
        elif op in _REF_BRANCHES:
            flags.mark_read(stack.pop())
            flags.mark_read(stack.pop())
        elif op in _NULL_BRANCHES:
            flags.mark_read(stack.pop())
        elif op is Op.NEW:
            stack.append(_EMPTY)
        elif op is Op.NEWARRAY:
            stack.pop()
            stack.append(_EMPTY)
        elif op is Op.GETFIELD:
            roots = stack.pop()
            flags.mark_read(roots)
            stack.append(roots)
        elif op is Op.PUTFIELD:
            value = stack.pop()
            container = stack.pop()
            flags.mark_read(container)
            flags.mark("written", container)
            flags.flow(value, container)
        elif op is Op.GETSTATIC:
            stack.append(_EMPTY)
        elif op is Op.PUTSTATIC:
            flags.mark("captured", stack.pop())
        elif op is Op.ALOAD:
            stack.pop()  # index
            roots = stack.pop()
            flags.mark_read(roots)
            stack.append(roots)
        elif op is Op.ASTORE:
            value = stack.pop()
            stack.pop()  # index
            container = stack.pop()
            flags.mark_read(container)
            flags.mark("written", container)
            flags.flow(value, container)
        elif op is Op.ARRAYLENGTH:
            flags.mark_read(stack.pop())
            stack.append(_EMPTY)
        elif op is Op.INSTANCEOF:
            flags.mark_read(stack.pop())
            stack.append(_EMPTY)
        elif op is Op.CHECKCAST:
            roots = stack[-1]
            flags.mark_read(roots)
        elif op in (Op.MONITORENTER, Op.MONITOREXIT):
            roots = stack.pop()
            flags.mark_read(roots)
            flags.mark("locked", roots)
        elif op is Op.THROW:
            flags.mark("captured", stack.pop())
        elif op is Op.RETURN:
            pass
        elif op is Op.RETURN_VALUE:
            flags.mark("returned", stack.pop())
        elif op in _INVOKES:
            self._call(insn.operand, stack)
        else:  # pragma: no cover - exhaustive over the Op enum
            raise _AnalysisBailout(f"unmodelled opcode {op}")

    def _call(self, ref: MethodRef, stack: List[FrozenSet[int]]):
        argc = ref.arg_count
        args = stack[len(stack) - argc:] if argc else []
        del stack[len(stack) - argc:]
        summary, return_type = self.database.invoke_summary(ref)
        flags = self.flags
        result_roots = _EMPTY
        for position, roots in enumerate(args):
            if not roots:
                continue
            callee_param = summary.param(position)
            if callee_param.used:
                for root in roots:
                    flags.used[root] = True
            if callee_param.read:
                flags.mark_read(roots)
            if callee_param.written:
                flags.mark("written", roots)
            if callee_param.locked:
                flags.mark("locked", roots)
            if callee_param.captured:
                flags.mark("captured", roots)
            if callee_param.returned:
                result_roots = result_roots | roots
            for target in callee_param.flows_to:
                container_roots = args[target] if target < len(args) \
                    else _EMPTY
                flags.flow(roots, container_roots)
        if return_type != "void":
            stack.append(result_roots)


class _AnalysisBailout(Exception):
    """Per-method analysis failure: the method's summary becomes top."""


_ARITH_BINARY = frozenset({
    Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.REM, Op.AND, Op.OR, Op.XOR,
    Op.SHL, Op.SHR})
_INT_BRANCHES = frozenset({
    Op.IF_EQ, Op.IF_NE, Op.IF_LT, Op.IF_LE, Op.IF_GT, Op.IF_GE})
_REF_BRANCHES = frozenset({Op.IF_ACMP_EQ, Op.IF_ACMP_NE})
_NULL_BRANCHES = frozenset({Op.IF_NULL, Op.IF_NONNULL})
_INVOKES = frozenset({Op.INVOKESTATIC, Op.INVOKEVIRTUAL,
                      Op.INVOKESPECIAL})


# ---------------------------------------------------------------------------
# The interprocedural database
# ---------------------------------------------------------------------------


class SummaryDatabase:
    """Whole-program escape summaries, computed once per program.

    The call-graph fixpoint starts every analyzable method at bottom
    (most optimistic) and re-analyzes in rounds until no summary
    changes.  Methods are visited in sorted qualified-name order and
    flags are monotone, so the result is independent of declaration
    order (a property test pins this down).
    """

    def __init__(self, program: Program):
        self.program = program
        self._summaries: Dict[str, MethodSummary] = {}
        self._block_graphs: Dict[str, BlockGraph] = {}
        self._computed = False
        #: Fixpoint rounds taken (diagnostics / tests).
        self.rounds = 0

    # -- public API ---------------------------------------------------------

    def summary(self, method: JMethod) -> MethodSummary:
        self._ensure_computed()
        summary = self._summaries.get(method.qualified_name)
        if summary is None:
            return MethodSummary.top(method.arg_count)
        return summary

    def invoke_summary(self, ref: MethodRef
                       ) -> Tuple[MethodSummary, str]:
        """The joined summary over every possible target of *ref*,
        plus the return type.  Unresolvable refs yield top."""
        self._ensure_computed()
        targets = self.resolve_targets(ref)
        if not targets:
            return MethodSummary.top(ref.arg_count), "Object"
        joined: Optional[MethodSummary] = None
        for target in targets:
            summary = self._summaries.get(target.qualified_name,
                                          MethodSummary.top(
                                              target.arg_count))
            joined = summary if joined is None else joined.join(summary)
        return joined, targets[0].return_type

    def digest(self, method: JMethod) -> str:
        return self.summary(method).digest()

    def call_digests(self, method: JMethod) -> Dict[str, str]:
        """``qualified_name -> digest`` for every method whose summary
        the given method's compilation may consult (its static call
        targets, transitively irrelevant — one level is what PEA
        reads)."""
        self._ensure_computed()
        digests: Dict[str, str] = {}
        if method.code is None:
            return digests
        for insn in method.code:
            if insn.op in _INVOKES:
                for target in self.resolve_targets(insn.operand):
                    digests[target.qualified_name] = self.digest(target)
        return digests

    def resolve_targets(self, ref: MethodRef) -> List[JMethod]:
        """Every method an invoke of *ref* may dispatch to."""
        try:
            resolved = self.program.resolve_method(ref.class_name,
                                                   ref.method_name)
        except Exception:  # noqa: BLE001 - unresolved ref
            return []
        targets = [resolved]
        for jclass in self.program.classes.values():
            if jclass.name == ref.class_name:
                continue
            override = jclass.methods.get(ref.method_name)
            if override is not None and override is not resolved and \
                    self.program.is_subclass_of(jclass.name,
                                                ref.class_name):
                targets.append(override)
        return targets

    # -- fixpoint ------------------------------------------------------------

    def _ensure_computed(self):
        if self._computed:
            return
        self._computed = True  # set first: invoke_summary recurses here
        methods = sorted(self.program.all_methods(),
                         key=lambda m: m.qualified_name)
        for method in methods:
            if method.is_native or method.code is None:
                self._summaries[method.qualified_name] = \
                    MethodSummary.top(method.arg_count)
            else:
                self._summaries[method.qualified_name] = \
                    MethodSummary.bottom(method.arg_count)
        analyzable = [m for m in methods
                      if not (m.is_native or m.code is None)]
        for _ in range(len(analyzable) + 2):
            self.rounds += 1
            changed = False
            for method in analyzable:
                new = self._analyze(method)
                if new != self._summaries[method.qualified_name]:
                    self._summaries[method.qualified_name] = new
                    changed = True
            if not changed:
                return
        # Should be unreachable (flags are monotone), but never loop.
        for method in analyzable:  # pragma: no cover
            self._summaries[method.qualified_name] = \
                MethodSummary.top(method.arg_count)

    def _analyze(self, method: JMethod) -> MethodSummary:
        try:
            block_graph = self._block_graphs.get(method.qualified_name)
            if block_graph is None:
                block_graph = BlockGraph(method)
                self._block_graphs[method.qualified_name] = block_graph
            flags = _Flags(method.arg_count)
            analysis = _SummaryAnalysis(method, block_graph, flags,
                                        self)
            ForwardSolver(BytecodeCFG(block_graph), analysis).solve()
            return flags.to_summary(method.arg_count)
        except Exception:  # noqa: BLE001 - any bailout: stay sound
            return MethodSummary.top(method.arg_count)


def summaries_for(program: Program) -> SummaryDatabase:
    """The program's summary database, memoized on the program object
    and invalidated by content fingerprint (mirrors how the compilation
    cache treats the program)."""
    fingerprint = program.content_fingerprint()
    cached = getattr(program, "_escape_summary_cache", None)
    if cached is not None and cached[0] == fingerprint:
        return cached[1]
    database = SummaryDatabase(program)
    program._escape_summary_cache = (fingerprint, database)
    return database


class SummaryView:
    """A per-compilation recording view: every summary the compilation
    consults is remembered with its digest, so the compiler can emit
    ``escape_summary`` cache facts that are revalidated (by
    recomputation) before a cached graph is reused."""

    def __init__(self, database: SummaryDatabase):
        self.database = database
        #: qualified_name -> digest of every consulted summary.
        self.consulted: Dict[str, str] = {}

    def _record(self, method: JMethod):
        self.consulted[method.qualified_name] = \
            self.database.digest(method)

    def summary_for_call(self, ref: MethodRef,
                         receiver_class: Optional[str] = None
                         ) -> Optional[MethodSummary]:
        """The summary governing a call to *ref*; with
        *receiver_class* (an exact type known from a virtual object)
        the single precise target is used instead of the CHA join.
        ``None`` when the ref does not resolve."""
        if receiver_class is not None:
            try:
                exact = self.database.program.resolve_method(
                    receiver_class, ref.method_name)
            except Exception:  # noqa: BLE001 - unresolved receiver
                return None
            self._record(exact)
            return self.database.summary(exact)
        targets = self.database.resolve_targets(ref)
        if not targets:
            return None
        for target in targets:
            self._record(target)
        summary, _ = self.database.invoke_summary(ref)
        return summary

    def facts(self) -> tuple:
        return tuple(("escape_summary", qualified, digest)
                     for qualified, digest in sorted(
                         self.consulted.items()))
