"""Escape-site attribution and lint passes (``repro analyze``).

Three lints, each a small client of the :mod:`repro.analysis.dataflow`
solver or of the IR dominator tree:

- **monitor-balance** — forward dataflow over the bytecode
  :class:`~repro.frontend.blocks.BlockGraph` tracking the set of
  possible lock depths; flags a ``monitorexit`` that may run with no
  lock held and a return that may leave a monitor locked.
- **redundant-null-check** — flags a null check whose value is a fresh
  allocation (never null) or is dominated by a ``null_check`` guard on
  the same SSA value (the guard passing proves non-null forever).
- **dead-store-to-virtual** — backward *must*-dataflow over the
  scheduled CFG: a field store to a non-escaping, unaliased allocation
  that is definitely overwritten before any read is dead.

``analyze`` additionally compiles every method under Partial Escape
Analysis and reports why each allocation was materialized, from the
events :class:`~repro.pea.virtualization.PEATool` records (e.g.
"allocation at ``Point.<init>@bci 3`` materialized because it flows
into ``log`` param 0").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..bytecode.classfile import JMethod, Program
from ..bytecode.disassembler import format_position
from ..bytecode.opcodes import Op
from ..frontend.blocks import BlockGraph, IrreducibleLoopError
from ..ir.nodes import (FixedGuardNode, IsNullNode, LoadFieldNode,
                        NewArrayNode, NewInstanceNode, PhiNode,
                        StoreFieldNode, StoreIndexedNode)
from ..scheduler.cfg import ControlFlowGraph
from .dataflow import BackwardSolver, BytecodeCFG, ForwardSolver, IRCFG

#: Lock-depth lattice cap: deeper nesting collapses so the analysis
#: terminates on enter-in-loop shapes (which are findings anyway).
_MAX_TRACKED_DEPTH = 12


@dataclass
class Finding:
    """One lint diagnostic."""

    pass_name: str
    method: str
    bci: Optional[int]
    message: str

    def location(self) -> str:
        if self.bci is None:
            return self.method
        return f"{self.method}@bci {self.bci}"

    def format(self) -> str:
        return f"{self.location()}: [{self.pass_name}] {self.message}"

    def to_dict(self) -> dict:
        return {"pass": self.pass_name, "method": self.method,
                "bci": self.bci, "message": self.message}


@dataclass
class MaterializationEvent:
    """Why one virtual object left the virtual world (plain data so it
    survives the compilation cache's detached pickles)."""

    method: str  #: the compiled (caller) method
    object_desc: str  #: e.g. ``Point`` or ``Operand[4]``
    object_position: Optional[str]  #: allocation site, if known
    reason: str  #: e.g. ``flows into Log.log param 0``
    kind: str = "materialized"  #: or ``borrowed`` / ``nulled_arg``

    def format(self) -> str:
        origin = f" at {self.object_position}" if self.object_position \
            else ""
        return (f"{self.method}: allocation <{self.object_desc}>"
                f"{origin} {self.kind} because it {self.reason}")

    def to_dict(self) -> dict:
        return {"method": self.method, "object": self.object_desc,
                "object_position": self.object_position,
                "kind": self.kind, "reason": self.reason}


# ---------------------------------------------------------------------------
# monitor-balance (bytecode level)
# ---------------------------------------------------------------------------


class _MonitorAnalysis:
    """State: frozenset of possible lock depths (``None`` unreachable)."""

    def __init__(self, method: JMethod, block_graph: BlockGraph):
        self.method = method
        self.block_graph = block_graph

    def bottom(self):
        return None

    def entry_state(self):
        return frozenset((0,))

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a | b

    def transfer(self, block_index, depths):
        if depths is None:
            return None
        block = self.block_graph.blocks[block_index]
        for bci in range(block.start, block.end + 1):
            op = self.method.code[bci].op
            if op is Op.MONITORENTER:
                depths = frozenset(min(d + 1, _MAX_TRACKED_DEPTH)
                                   for d in depths)
            elif op is Op.MONITOREXIT:
                depths = frozenset(max(d - 1, 0) for d in depths)
        return depths


def check_monitor_balance(program: Program) -> List[Finding]:
    findings: List[Finding] = []
    for method in program.all_methods():
        if method.is_native or not method.code:
            continue
        try:
            block_graph = BlockGraph(method)
        except IrreducibleLoopError:
            continue
        analysis = _MonitorAnalysis(method, block_graph)
        result = ForwardSolver(BytecodeCFG(block_graph),
                               analysis).solve()
        for block_index in block_graph.rpo:
            depths = result.block_in.get(block_index)
            if depths is None:
                continue
            block = block_graph.blocks[block_index]
            for bci in range(block.start, block.end + 1):
                op = method.code[bci].op
                if op is Op.MONITOREXIT and 0 in depths:
                    findings.append(Finding(
                        "monitor-balance", method.qualified_name, bci,
                        "monitorexit may run with no monitor held"))
                elif op in (Op.RETURN, Op.RETURN_VALUE) and \
                        any(d > 0 for d in depths):
                    findings.append(Finding(
                        "monitor-balance", method.qualified_name, bci,
                        "return may leave a monitor locked"))
                depths = _step_depths(op, depths)
    return findings


def _step_depths(op, depths):
    if op is Op.MONITORENTER:
        return frozenset(min(d + 1, _MAX_TRACKED_DEPTH) for d in depths)
    if op is Op.MONITOREXIT:
        return frozenset(max(d - 1, 0) for d in depths)
    return depths


# ---------------------------------------------------------------------------
# redundant-null-check (IR level, freshly built graphs)
# ---------------------------------------------------------------------------


def check_redundant_null_checks(program: Program) -> List[Finding]:
    findings: List[Finding] = []
    for method, graph in _build_graphs(program):
        cfg = ControlFlowGraph(graph)
        # All null_check guards per guarded SSA value.
        guards_by_value: Dict[object, List[FixedGuardNode]] = {}
        for node in graph.nodes():
            if isinstance(node, FixedGuardNode) and \
                    node.reason == "null_check" and \
                    isinstance(node.condition, IsNullNode):
                guards_by_value.setdefault(
                    node.condition.value, []).append(node)
        for node in graph.nodes():
            if not isinstance(node, IsNullNode):
                continue
            value = node.value
            if isinstance(value, (NewInstanceNode, NewArrayNode)):
                findings.append(Finding(
                    "redundant-null-check", method.qualified_name,
                    _node_bci(node),
                    "null check on a fresh allocation (never null)"))
                continue
            for guard in guards_by_value.get(value, ()):  # noqa: B020
                if guard.condition is node:
                    continue  # the check feeding this very guard
                if _strictly_dominates(cfg, guard, node):
                    findings.append(Finding(
                        "redundant-null-check", method.qualified_name,
                        _node_bci(node),
                        "null check dominated by a null_check guard on "
                        "the same value (always false)"))
                    break
    return findings


def _strictly_dominates(cfg: ControlFlowGraph, a, b) -> bool:
    block_a = cfg.block_of.get(a)
    block_b = cfg.block_of.get(b)
    if block_a is None or block_b is None or a is b:
        return False
    if block_a is block_b:
        nodes = block_a.nodes
        return nodes.index(a) < nodes.index(b)
    return cfg.dominates(block_a, block_b)


# ---------------------------------------------------------------------------
# dead-store-to-virtual (IR level, backward must-overwrite)
# ---------------------------------------------------------------------------


class _DeadStoreAnalysis:
    """Backward: set of (allocation, field_name) pairs that are
    definitely overwritten before any read (``None`` = no info)."""

    def __init__(self, tracked: Set[object]):
        self.tracked = tracked

    def bottom(self):
        return None

    def entry_state(self):
        return frozenset()

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a & b  # must-analysis

    def transfer(self, block, state):
        if state is None:
            return None
        facts = set(state)
        for node in reversed(block.nodes):
            self.step(node, facts)
        return frozenset(facts)

    def step(self, node, facts: set):
        if isinstance(node, StoreFieldNode) and \
                node.object in self.tracked:
            facts.add((node.object, node.field.field_name))
        elif isinstance(node, LoadFieldNode) and \
                node.object in self.tracked:
            facts.discard((node.object, node.field.field_name))


def check_dead_stores(program: Program) -> List[Finding]:
    from ..pea.equi_escape import EquiEscapeSets

    findings: List[Finding] = []
    for method, graph in _build_graphs(program):
        approved = EquiEscapeSets(graph, program).analyze()
        # Exclude aliased allocations: once stored or phi-joined, loads
        # through other names could observe the "dead" store.
        tracked: Set[object] = set()
        for allocation in approved:
            if not isinstance(allocation, NewInstanceNode):
                continue
            aliased = any(
                isinstance(user, (StoreFieldNode, StoreIndexedNode))
                and getattr(user, "value", None) is allocation
                or isinstance(user, PhiNode)
                for user in allocation.usages)
            if not aliased:
                tracked.add(allocation)
        if not tracked:
            continue
        cfg = ControlFlowGraph(graph)
        analysis = _DeadStoreAnalysis(tracked)
        result = BackwardSolver(IRCFG(cfg), analysis).solve()
        for block in cfg.rpo:
            state = result.block_in.get(block)
            if state is None:
                continue
            facts = set(state)
            for node in reversed(block.nodes):
                if isinstance(node, StoreFieldNode) and \
                        node.object in tracked and \
                        (node.object, node.field.field_name) in facts:
                    findings.append(Finding(
                        "dead-store-to-virtual",
                        method.qualified_name, _node_bci(node),
                        f"store to {node.field} on a non-escaping "
                        f"allocation is overwritten before any read"))
                analysis.step(node, facts)
    return findings


# ---------------------------------------------------------------------------
# shared helpers / drivers
# ---------------------------------------------------------------------------


def _build_graphs(program: Program):
    from ..frontend.graph_builder import GraphBuildError, build_graph

    for method in program.all_methods():
        if method.is_native or not method.code:
            continue
        try:
            yield method, build_graph(program, method)
        except (GraphBuildError, IrreducibleLoopError):
            continue


def _node_bci(node) -> Optional[int]:
    position = getattr(node, "position", None)
    if position is not None:
        return position[1]
    return None


LINT_PASSES: Dict[str, Callable[[Program], List[Finding]]] = {
    "monitor-balance": check_monitor_balance,
    "redundant-null-check": check_redundant_null_checks,
    "dead-store-to-virtual": check_dead_stores,
}


def lint_program(program: Program,
                 passes: Optional[List[str]] = None) -> List[Finding]:
    findings: List[Finding] = []
    for name in (passes or sorted(LINT_PASSES)):
        findings.extend(LINT_PASSES[name](program))
    findings.sort(key=lambda f: (f.method, f.bci if f.bci is not None
                                 else -1, f.pass_name))
    return findings


@dataclass
class AnalysisReport:
    """``repro analyze`` output: lints + escape-site attribution."""

    findings: List[Finding] = field(default_factory=list)
    events: List[MaterializationEvent] = field(default_factory=list)
    #: method -> (virtualized, materialized) counts
    per_method: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "materializations": [e.to_dict() for e in self.events],
            "per_method": {name: {"virtualized": v, "materialized": m}
                           for name, (v, m) in
                           sorted(self.per_method.items())},
        }

    def format(self) -> str:
        lines: List[str] = []
        if self.findings:
            lines.append(f"{len(self.findings)} lint finding(s):")
            lines.extend("  " + f.format() for f in self.findings)
        else:
            lines.append("lint: clean")
        if self.events:
            lines.append(f"{len(self.events)} escape site(s):")
            lines.extend("  " + e.format() for e in self.events)
        total_virtual = sum(v for v, _ in self.per_method.values())
        total_mat = sum(m for _, m in self.per_method.values())
        lines.append(f"PEA: {total_virtual} allocation(s) virtualized, "
                     f"{total_mat} materialization(s)")
        return "\n".join(lines)


def analyze_program(program: Program,
                    config=None) -> AnalysisReport:
    """Lint *program* and attribute every PEA materialization."""
    from ..jit.compiler import Compiler
    from ..jit.options import CompilerConfig

    report = AnalysisReport(findings=lint_program(program))
    if config is None:
        config = CompilerConfig.partial_escape(
            escape_tier="pea+summaries")
    compiler = Compiler(program, config, profile=None)
    for method in sorted(program.all_methods(),
                         key=lambda m: m.qualified_name):
        if method.is_native or not method.code:
            continue
        try:
            result = compiler.compile(method)
        except Exception:  # noqa: BLE001 - uncompilable: skip
            continue
        ea_result = result.ea_result
        if ea_result is None:
            continue
        report.per_method[method.qualified_name] = (
            ea_result.virtualized_allocations,
            ea_result.materializations)
        report.events.extend(ea_result.events)
    return report


__all__ = ["Finding", "MaterializationEvent", "AnalysisReport",
           "LINT_PASSES", "lint_program", "analyze_program",
           "check_monitor_balance", "check_redundant_null_checks",
           "check_dead_stores", "format_position"]
