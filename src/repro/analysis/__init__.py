"""Lattice-based static analyses over bytecode and IR control flow.

Three layers (ISSUE 5):

- :mod:`repro.analysis.dataflow` — a generic forward/backward worklist
  solver parameterized over a CFG adapter and a lattice protocol.
- :mod:`repro.analysis.summaries` — interprocedural escape summaries
  (which parameters a callee captures / returns / merely reads),
  consulted by Partial Escape Analysis at Invoke sites.
- :mod:`repro.analysis.diagnostics` — escape-site attribution and lint
  passes backing the ``repro analyze`` / ``repro lint`` CLI.
- :mod:`repro.analysis.conngraph` — the cheap connection-graph escape
  tier (ISSUE 9): Tarjan-condensed escape-root reachability feeding
  stack allocation and lock elision without running PEA.
"""

from .conngraph import (ConnectionGraph, ConnGraphLockElisionPhase,
                        tarjan_sccs)
from .dataflow import (BackwardSolver, BytecodeCFG, DataflowResult,
                       ForwardSolver, IRCFG)
from .summaries import (MethodSummary, ParamSummary, ParamEscape,
                        SummaryDatabase)

__all__ = [
    "ForwardSolver", "BackwardSolver", "DataflowResult", "BytecodeCFG",
    "IRCFG", "SummaryDatabase", "MethodSummary", "ParamSummary",
    "ParamEscape", "ConnectionGraph", "ConnGraphLockElisionPhase",
    "tarjan_sccs",
]
