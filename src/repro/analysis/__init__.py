"""Lattice-based static analyses over bytecode and IR control flow.

Three layers (ISSUE 5):

- :mod:`repro.analysis.dataflow` — a generic forward/backward worklist
  solver parameterized over a CFG adapter and a lattice protocol.
- :mod:`repro.analysis.summaries` — interprocedural escape summaries
  (which parameters a callee captures / returns / merely reads),
  consulted by Partial Escape Analysis at Invoke sites.
- :mod:`repro.analysis.diagnostics` — escape-site attribution and lint
  passes backing the ``repro analyze`` / ``repro lint`` CLI.
"""

from .dataflow import (BackwardSolver, BytecodeCFG, DataflowResult,
                       ForwardSolver, IRCFG)
from .summaries import (MethodSummary, ParamSummary, ParamEscape,
                        SummaryDatabase)

__all__ = [
    "ForwardSolver", "BackwardSolver", "DataflowResult", "BytecodeCFG",
    "IRCFG", "SummaryDatabase", "MethodSummary", "ParamSummary",
    "ParamEscape",
]
