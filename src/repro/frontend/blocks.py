"""Basic-block analysis over bytecode: CFG, dominators, loop headers.

The graph builder processes blocks in reverse post order and needs to
know, for every block, its forward predecessors and whether it is a loop
header (the target of a back edge).  Back edges are classified by
dominance (edge ``u -> v`` is a back edge iff ``v`` dominates ``u``),
which also rejects irreducible control flow — our bytecode producers
only emit reducible graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..bytecode.classfile import JMethod
from ..bytecode.opcodes import Op, info


class IrreducibleLoopError(Exception):
    """The bytecode contains irreducible control flow."""


@dataclass
class BasicBlock:
    """A maximal straight-line bytecode range [start, end] (inclusive)."""

    index: int  # dense block id
    start: int  # first bci
    end: int  # last bci (the terminator, or last instruction)
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)
    is_loop_header: bool = False
    #: Predecessor block ids whose edge into this block is a back edge.
    back_edge_preds: List[int] = field(default_factory=list)

    def forward_predecessors(self) -> List[int]:
        return [p for p in self.predecessors
                if p not in self.back_edge_preds]


class BlockGraph:
    """The CFG of one method's bytecode."""

    def __init__(self, method: JMethod):
        self.method = method
        self.blocks: List[BasicBlock] = []
        self.block_of_bci: Dict[int, int] = {}
        self.rpo: List[int] = []
        self.idom: List[Optional[int]] = []
        self._build()

    # -- construction ------------------------------------------------------

    def _build(self):
        code = self.method.code
        leaders = self._find_leaders(code)
        starts = sorted(leaders)
        # Create blocks.
        for index, start in enumerate(starts):
            end = (starts[index + 1] - 1 if index + 1 < len(starts)
                   else len(code) - 1)
            # The block may end earlier at a terminator.
            for bci in range(start, end + 1):
                self.block_of_bci[bci] = index
            self.blocks.append(BasicBlock(index, start, end))
        # Edges.
        for block in self.blocks:
            terminator = code[block.end]
            op = terminator.op
            op_info = info(op)
            targets: List[int] = []
            if op_info.is_branch:
                targets.append(terminator.operand)
                if op is not Op.GOTO:
                    targets.append(block.end + 1)
            elif not op_info.is_terminator:
                targets.append(block.end + 1)
            for target in targets:
                succ = self.block_of_bci[target]
                if self.blocks[succ].start != target:
                    raise AssertionError(
                        f"branch target {target} is not a leader")
                block.successors.append(succ)
                self.blocks[succ].predecessors.append(block.index)
        self._compute_order_and_dominators()
        self._classify_back_edges()

    @staticmethod
    def _find_leaders(code) -> Set[int]:
        leaders = {0}
        for bci, insn in enumerate(code):
            op_info = info(insn.op)
            if op_info.is_branch:
                leaders.add(insn.operand)
                if bci + 1 < len(code):
                    leaders.add(bci + 1)
            elif op_info.is_terminator and bci + 1 < len(code):
                leaders.add(bci + 1)
        return {bci for bci in leaders if bci < len(code)}

    def _compute_order_and_dominators(self):
        # Iterative DFS post-order from block 0.
        visited: Set[int] = set()
        post: List[int] = []
        stack: List[Tuple[int, int]] = [(0, 0)]
        visited.add(0)
        while stack:
            block_id, succ_index = stack.pop()
            successors = self.blocks[block_id].successors
            if succ_index < len(successors):
                stack.append((block_id, succ_index + 1))
                succ = successors[succ_index]
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, 0))
            else:
                post.append(block_id)
        self.rpo = list(reversed(post))
        self.reachable = visited
        # Prune edges from unreachable blocks.
        for block in self.blocks:
            if block.index not in visited:
                for succ in block.successors:
                    succ_block = self.blocks[succ]
                    if block.index in succ_block.predecessors:
                        succ_block.predecessors.remove(block.index)
                block.successors = []

        # Cooper-Harvey-Kennedy iterative dominators.
        rpo_index = {b: i for i, b in enumerate(self.rpo)}
        idom: Dict[int, int] = {0: 0}
        changed = True
        while changed:
            changed = False
            for block_id in self.rpo:
                if block_id == 0:
                    continue
                preds = [p for p in self.blocks[block_id].predecessors
                         if p in idom]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = self._intersect(new_idom, pred, idom,
                                               rpo_index)
                if idom.get(block_id) != new_idom:
                    idom[block_id] = new_idom
                    changed = True
        self.idom = [idom.get(b.index) for b in self.blocks]

    @staticmethod
    def _intersect(a: int, b: int, idom: Dict[int, int],
                   rpo_index: Dict[int, int]) -> int:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]
        return a

    def dominates(self, a: int, b: int) -> bool:
        """True if block *a* dominates block *b*."""
        current: Optional[int] = b
        while True:
            if current == a:
                return True
            if current == 0:
                return False
            current = self.idom[current]
            if current is None:
                return False

    def _classify_back_edges(self):
        for block in self.blocks:
            if block.index not in self.reachable:
                continue
            for succ in block.successors:
                if self.dominates(succ, block.index):
                    succ_block = self.blocks[succ]
                    succ_block.is_loop_header = True
                    succ_block.back_edge_preds.append(block.index)
        # Reducibility check: every retreating edge must be a back edge.
        rpo_index = {b: i for i, b in enumerate(self.rpo)}
        for block in self.blocks:
            if block.index not in self.reachable:
                continue
            for succ in block.successors:
                if rpo_index.get(succ, 0) <= rpo_index.get(block.index, 0):
                    if block.index not in \
                            self.blocks[succ].back_edge_preds:
                        raise IrreducibleLoopError(
                            f"{self.method.qualified_name}: retreating "
                            f"edge {block.index}->{succ} is not a back "
                            "edge")

    # -- queries ------------------------------------------------------------

    def block_at(self, bci: int) -> BasicBlock:
        return self.blocks[self.block_of_bci[bci]]

    def loop_blocks(self, header: int) -> Set[int]:
        """All blocks in the natural loop of *header*."""
        header_block = self.blocks[header]
        members: Set[int] = {header}
        worklist = list(header_block.back_edge_preds)
        while worklist:
            block_id = worklist.pop()
            if block_id in members:
                continue
            members.add(block_id)
            worklist.extend(self.blocks[block_id].predecessors)
        return members
