"""Bytecode -> IR graph construction."""

from .blocks import BasicBlock, BlockGraph, IrreducibleLoopError
from .frame import BuilderFrame
from .graph_builder import GraphBuildError, GraphBuilder, build_graph

__all__ = ["BasicBlock", "BlockGraph", "IrreducibleLoopError",
           "BuilderFrame", "GraphBuildError", "GraphBuilder",
           "build_graph"]
