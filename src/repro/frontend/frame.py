"""The abstract frame used during SSA construction."""

from __future__ import annotations

from typing import List, Optional

from ..ir.node import Node


class BuilderFrame:
    """Local variable and operand stack contents as IR value nodes."""

    __slots__ = ("locals", "stack")

    def __init__(self, locals_: List[Node], stack: Optional[List[Node]]
                 = None):
        self.locals = locals_
        self.stack = stack if stack is not None else []

    def copy(self) -> "BuilderFrame":
        return BuilderFrame(list(self.locals), list(self.stack))

    def push(self, value: Node):
        self.stack.append(value)

    def pop(self) -> Node:
        return self.stack.pop()

    def pop_many(self, count: int) -> List[Node]:
        if count == 0:
            return []
        values = self.stack[-count:]
        del self.stack[-count:]
        return values

    def slots(self) -> List[Node]:
        """All value slots, locals first then stack."""
        return self.locals + self.stack

    def set_slots(self, values: List[Node]):
        local_count = len(self.locals)
        self.locals = values[:local_count]
        self.stack = values[local_count:]

    def __repr__(self):
        return f"BuilderFrame(locals={self.locals}, stack={self.stack})"
