"""Local-variable liveness over bytecode.

Graal clears non-live locals when building frame states and loop phis
("clearNonLiveLocals"); without this, stale object references linger in
local slots, creating phantom loop-carried values that force Partial
Escape Analysis to materialize objects that are actually dead.

Standard backward dataflow: ``LOAD n`` uses slot *n*, ``STORE n``
defines it.  The result answers "is local *n* live immediately before
*bci*?".
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..bytecode.classfile import JMethod
from ..bytecode.opcodes import Op, info
from .blocks import BlockGraph


class LocalLiveness:
    def __init__(self, block_graph: BlockGraph):
        self.method = block_graph.method
        self.block_graph = block_graph
        #: live-before sets, one per bci.
        self._live_before: List[Set[int]] = [
            set() for _ in self.method.code]
        self._compute()

    # -- queries ----------------------------------------------------------

    def live_before(self, bci: int) -> Set[int]:
        return self._live_before[bci]

    def is_live_before(self, bci: int, slot: int) -> bool:
        return slot in self._live_before[bci]

    # -- analysis -----------------------------------------------------------

    def _compute(self):
        code = self.method.code
        blocks = self.block_graph.blocks
        live_in: Dict[int, Set[int]] = {b.index: set() for b in blocks}
        changed = True
        while changed:
            changed = False
            # Reverse RPO approximates post-order for fast convergence.
            for block in reversed([
                    blocks[i] for i in self.block_graph.rpo]):
                live = set()
                for succ in block.successors:
                    live |= live_in[succ]
                for bci in range(block.end, block.start - 1, -1):
                    insn = code[bci]
                    if insn.op is Op.STORE:
                        live.discard(insn.operand)
                    elif insn.op is Op.LOAD:
                        live.add(insn.operand)
                    self._live_before[bci] = set(live)
                if live != live_in[block.index]:
                    live_in[block.index] = live
                    changed = True
        self.live_in = live_in
