"""Bytecode -> sea-of-nodes graph construction.

Processes basic blocks in reverse post order, carrying a
:class:`BuilderFrame` of IR values through each block, creating Merge/Phi
nodes at joins and LoopBegin/LoopEnd nodes at natural loops.  Every
potentially-trapping bytecode is compiled speculation-style: a FixedGuard
that deoptimizes to the interpreter, followed by the trap-free operation
(exceptions never unwind inside compiled code, as in Graal).

Frame-state conventions (consumed by :mod:`repro.runtime.deopt`):

- guard states: ``bci`` = the guarded instruction, stack *before* it —
  the interpreter re-executes the instruction and raises properly;
- invoke states: ``bci`` = the invoke, stack without the arguments — an
  *outer* state; the interpreter resumes at ``bci + 1`` and pushes the
  callee's result;
- store/monitor states: ``bci`` = the next instruction, stack popped —
  the state *after* the side effect (Section 2 of the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..bytecode.classfile import JMethod, Program
from ..bytecode.instructions import Instruction, MethodRef
from ..bytecode.interpreter import Profile
from ..bytecode.opcodes import (INT_COMPARE_BRANCHES, NULL_BRANCHES,
                                REF_COMPARE_BRANCHES, Op)
from ..ir.graph import Graph
from ..ir.node import FixedWithNextNode, IRError, Node
from ..ir.nodes import (ArrayLengthNode, BeginNode, BinaryArithmeticNode,
                        ConstantNode, DeoptimizeNode, EndNode,
                        FixedGuardNode, FrameStateNode, IfNode,
                        InstanceOfNode, IntCompareNode, InvokeNode,
                        IsNullNode, LoadFieldNode, LoadIndexedNode,
                        LoadStaticNode, LoopBeginNode, LoopEndNode,
                        MergeNode, MonitorEnterNode, MonitorExitNode,
                        NegNode, NewArrayNode, NewInstanceNode,
                        ParameterNode, PhiNode, RefEqualsNode, ReturnNode,
                        StartNode, StoreFieldNode, StoreIndexedNode,
                        StoreStaticNode)
from .blocks import BasicBlock, BlockGraph
from .frame import BuilderFrame
from .liveness import LocalLiveness

_ARITH_OPS = {Op.ADD: "add", Op.SUB: "sub", Op.MUL: "mul", Op.AND: "and",
              Op.OR: "or", Op.XOR: "xor", Op.SHL: "shl", Op.SHR: "shr"}
_COMPARE_OPS = {Op.IF_EQ: "eq", Op.IF_NE: "ne", Op.IF_LT: "lt",
                Op.IF_LE: "le", Op.IF_GT: "gt", Op.IF_GE: "ge"}
_INVOKE_KINDS = {Op.INVOKESTATIC: "static", Op.INVOKEVIRTUAL: "virtual",
                 Op.INVOKESPECIAL: "special"}


class GraphBuildError(Exception):
    pass


class GraphBuilder:
    """Builds the IR graph for one method."""

    def __init__(self, program: Program, method: JMethod,
                 profile: Optional[Profile] = None,
                 speculate_branches: bool = False,
                 speculation_min_samples: int = 50,
                 osr_bci: Optional[int] = None,
                 continuation: Optional[Tuple[int, int,
                                              Optional[tuple]]] = None):
        if method.is_native:
            raise GraphBuildError(
                f"cannot build a graph for native method "
                f"{method.qualified_name}")
        if (osr_bci is not None or continuation is not None) and \
                method.is_synchronized:
            # The interpreter's invoke() holds the method lock around the
            # whole frame; an OSR epilogue would release it a second time.
            raise GraphBuildError(
                f"no OSR into synchronized method "
                f"{method.qualified_name}")
        if osr_bci is not None and continuation is not None:
            raise GraphBuildError("osr_bci and continuation are exclusive")
        self.program = program
        self.method = method
        self.profile = profile
        #: On-stack-replacement mode: build an entry variant whose entry
        #: point is the loop header at *osr_bci*, seeded from an
        #: interpreter-frame snapshot instead of the method parameters.
        self.osr_bci = osr_bci
        #: Deoptless continuation mode: ``(entry_bci, stack_depth,
        #: context)`` — an OSR-style entry at an arbitrary deopt bci
        #: (mid-block allowed, operand stack allowed), specialized
        #: against a dispatch *context* observed at the failing site:
        #: ``("branch", bci, taken)`` forces that branch direction as an
        #: assumption-guard, ``("receiver", bci, class_name)`` guards and
        #: devirtualizes that call site.  ``None`` context compiles an
        #: unspecialized continuation.
        self.continuation = continuation
        #: Optimistic compilation: branches never taken in the profile
        #: become FixedGuards that deoptimize if ever reached.
        self.speculate_branches = speculate_branches and profile is not \
            None
        self.speculation_min_samples = speculation_min_samples
        self.graph = Graph(method)
        self.block_graph = BlockGraph(method)
        self.liveness = LocalLiveness(self.block_graph)
        #: Incoming forward edges: block id -> [(anchor, frame)].
        self._incoming: Dict[int, List[Tuple[FixedWithNextNode,
                                             BuilderFrame]]] = {}
        #: Loop phis: header block id -> list of PhiNodes (slot order).
        self._loop_phis: Dict[int, List[PhiNode]] = {}
        self._loop_begins: Dict[int, LoopBeginNode] = {}
        #: Values that are non-null everywhere (allocations, 'this').
        self._always_non_null: Set[Node] = set()
        #: Values null-guarded earlier in the current block.
        self._block_non_null: Set[Node] = set()
        #: Anchor: the fixed node whose `next` is the current insert point.
        self._anchor: Optional[FixedWithNextNode] = None
        self._method_locks: List[Node] = []
        #: Bytecode index of the instruction currently being lowered;
        #: threaded onto appended nodes as ``(method, bci)`` source
        #: positions for diagnostics (see
        #: :func:`repro.bytecode.disassembler.format_position`).
        self._current_bci: Optional[int] = None

    # -- public -----------------------------------------------------------

    def build(self) -> Graph:
        graph = self.graph
        start = graph.add(StartNode())
        graph.start = start
        self._anchor = start

        if self.continuation is not None:
            frame, block, entry_bci = self._build_continuation_entry()
            if entry_bci == block.start:
                self._incoming[block.index] = [(self._anchor, frame)]
            else:
                # Mid-block entry: lower the tail of the entry block
                # directly off the start anchor.  If downstream control
                # flow re-reaches this block's start, the full block is
                # lowered again there (tail duplication), which is
                # exactly the OSR-bypass semantics.
                self._process_block_body(block, entry_bci, frame)
        elif self.osr_bci is None:
            params = [graph.add(ParameterNode(i))
                      for i in range(self.method.arg_count)]
            graph.parameters = params
            if not self.method.is_static and params:
                self._always_non_null.add(params[0])

            local_count = max(self.method.max_locals,
                              self.method.arg_count)
            locals_ = list(params) + [graph.null] * (local_count
                                                     - len(params))
            frame = BuilderFrame(locals_)

            if self.method.is_synchronized and not self.method.is_static:
                self._method_locks = [params[0]]
                enter = MonitorEnterNode(object=params[0])
                self._append(enter)
                enter.state_after = self._make_state(0, frame)

            self._incoming[self.block_graph.rpo[0]] = [(self._anchor,
                                                        frame)]
        else:
            frame, entry_block = self._build_osr_entry()
            self._incoming[entry_block] = [(self._anchor, frame)]

        for block_id in self.block_graph.rpo:
            self._process_block(self.block_graph.blocks[block_id])
        graph.verify()
        return graph

    def _build_osr_entry(self) -> Tuple[BuilderFrame, int]:
        """The OSR entry frame: one ParameterNode per local slot live at
        the loop header, dead slots cleared — the dual of the
        deoptimizer's frame-state decoding (an interpreter frame mapped
        *into* compiled code instead of out of it)."""
        graph = self.graph
        bci = self.osr_bci
        if not 0 <= bci < len(self.method.code):
            raise GraphBuildError(
                f"OSR bci {bci} out of range in "
                f"{self.method.qualified_name}")
        block = self.block_graph.blocks[
            self.block_graph.block_of_bci[bci]]
        if block.start != bci or not block.is_loop_header:
            raise GraphBuildError(
                f"OSR bci {bci} of {self.method.qualified_name} is not "
                f"a loop header")
        live = self.liveness.live_before(bci)
        local_count = max(self.method.max_locals, self.method.arg_count)
        params = []
        slots = []
        locals_: List[Node] = []
        for slot in range(local_count):
            if slot in live:
                param = graph.add(ParameterNode(len(params)))
                params.append(param)
                slots.append(slot)
                locals_.append(param)
            else:
                locals_.append(graph.null)
        graph.parameters = params
        graph.osr_entry_bci = bci
        graph.osr_local_slots = slots
        # The operand stack is empty at a backedge (the interpreter only
        # offers OSR there), so the entry frame carries locals only.
        return BuilderFrame(locals_), block.index

    def _build_continuation_entry(self) -> Tuple[BuilderFrame, BasicBlock,
                                                 int]:
        """A deoptless continuation entry: like the OSR entry, but at an
        arbitrary deopt bci — possibly mid-block, possibly with operand
        stack values, which become extra ParameterNodes after the live
        local slots.  The runtime re-enters compiled code with exactly
        the rematerialized frame the deoptimizer would have handed the
        interpreter."""
        graph = self.graph
        bci, stack_depth, _context = self.continuation
        if not 0 <= bci < len(self.method.code):
            raise GraphBuildError(
                f"continuation bci {bci} out of range in "
                f"{self.method.qualified_name}")
        block = self.block_graph.blocks[
            self.block_graph.block_of_bci[bci]]
        if block.index not in self.block_graph.reachable:
            raise GraphBuildError(
                f"continuation bci {bci} of {self.method.qualified_name} "
                f"is unreachable")
        live = self.liveness.live_before(bci)
        local_count = max(self.method.max_locals, self.method.arg_count)
        params = []
        slots = []
        locals_: List[Node] = []
        for slot in range(local_count):
            if slot in live:
                param = graph.add(ParameterNode(len(params)))
                params.append(param)
                slots.append(slot)
                locals_.append(param)
            else:
                locals_.append(graph.null)
        stack = [graph.add(ParameterNode(len(params) + i))
                 for i in range(stack_depth)]
        graph.parameters = params + stack
        graph.osr_entry_bci = bci
        graph.osr_local_slots = slots
        graph.entry_stack_depth = stack_depth
        return BuilderFrame(locals_, stack), block, bci

    # -- plumbing -----------------------------------------------------------

    def _append(self, node: FixedWithNextNode) -> FixedWithNextNode:
        """Append a fixed node at the current insert point."""
        self.graph.add(node)
        if self._current_bci is not None and \
                getattr(node, "position", None) is None:
            node.position = (self.method, self._current_bci)
        self._anchor.next = node
        self._anchor = node
        return node

    def _make_state(self, bci: int, frame: BuilderFrame,
                    stack: Optional[List[Node]] = None) -> FrameStateNode:
        state = FrameStateNode(self.method, bci)
        self.graph.add(state)
        # Non-live locals are cleared (Graal's clearNonLiveLocals): dead
        # object references must not keep allocations alive in states.
        live_bci = min(bci, len(self.method.code) - 1)
        live = self.liveness.live_before(live_bci)
        for slot, value in enumerate(frame.locals):
            state.locals_values.append(
                value if slot in live else self.graph.null)
        state.stack_values.extend(
            stack if stack is not None else frame.stack)
        state.locks.extend(self._method_locks)
        return state

    def _is_non_null(self, value: Node) -> bool:
        if value in self._always_non_null:
            return True
        if value in self._block_non_null:
            return True
        if isinstance(value, (NewInstanceNode, NewArrayNode)):
            return True
        if isinstance(value, ConstantNode) and value.value is not None:
            return True
        return False

    def _null_guard(self, value: Node, bci: int, frame: BuilderFrame,
                    stack_before: List[Node]):
        if self._is_non_null(value):
            return
        is_null = self._append(IsNullNode(value=value))
        state = self._make_state(bci, frame, stack_before)
        self._append(FixedGuardNode("null_check", negated=True,
                                    condition=is_null, state=state))
        self._block_non_null.add(value)

    # -- block processing ----------------------------------------------------

    def _process_block(self, block: BasicBlock):
        if block.index not in self.block_graph.reachable:
            return
        if block.index not in self._incoming:
            return  # all paths into this block were speculated away
        frame = self._materialize_entry(block)
        self._process_block_body(block, block.start, frame)

    def _process_block_body(self, block: BasicBlock, bci: int,
                            frame: BuilderFrame):
        """Lower *block*'s instructions starting at *bci* (the block
        start normally; a later bci for a mid-block continuation entry)."""
        self._block_non_null = set()
        code = self.method.code
        while bci <= block.end:
            insn = code[bci]
            self._current_bci = bci
            if insn.is_branch or insn.is_terminator:
                self._process_terminator(block, bci, insn, frame)
                return
            self._process_instruction(bci, insn, frame)
            bci += 1
        # Fallthrough into the next block.
        self._connect_edge(self._anchor, frame, block.index,
                           self.block_graph.block_of_bci[block.end + 1])

    def _materialize_entry(self, block: BasicBlock) -> BuilderFrame:
        incoming = self._incoming.pop(block.index, [])
        if block.is_loop_header:
            return self._materialize_loop_header(block, incoming)
        if len(incoming) == 1:
            anchor, frame = incoming[0]
            self._anchor = anchor
            return frame
        if not incoming:
            raise GraphBuildError(
                f"block {block.index} has no incoming edges")
        merge = self.graph.add(MergeNode())
        frames = []
        for anchor, frame in incoming:
            end = self.graph.add(EndNode())
            anchor.next = end
            merge.add_end(end)
            frames.append(frame)
        merged = self._merge_frames(merge, frames, block.start)
        self._anchor = merge
        return merged

    def _merge_frames(self, merge: MergeNode, frames: List[BuilderFrame],
                      entry_bci: Optional[int] = None) -> BuilderFrame:
        slot_lists = [frame.slots() for frame in frames]
        width = len(slot_lists[0])
        for slots in slot_lists:
            if len(slots) != width:
                raise GraphBuildError("inconsistent frame sizes at merge")
        local_count = len(frames[0].locals)
        live = (self.liveness.live_before(entry_bci)
                if entry_bci is not None else None)
        merged_slots: List[Node] = []
        for index in range(width):
            if live is not None and index < local_count and \
                    index not in live:
                merged_slots.append(self.graph.null)
                continue
            values = [slots[index] for slots in slot_lists]
            first = values[0]
            if all(value is first for value in values):
                merged_slots.append(first)
            else:
                phi = PhiNode(merge=merge)
                phi.values.extend(values)
                self.graph.add(phi)
                merged_slots.append(phi)
        result = frames[0].copy()
        result.set_slots(merged_slots)
        return result

    def _materialize_loop_header(self, block: BasicBlock, incoming
                                 ) -> BuilderFrame:
        if not incoming:
            raise GraphBuildError(
                f"loop header {block.index} has no forward edges")
        # LoopBegin invariant: exactly one forward end.  Multiple forward
        # edges are funnelled through a pre-merge first.
        if len(incoming) > 1:
            pre_merge = self.graph.add(MergeNode())
            frames = []
            for anchor, frame in incoming:
                end = self.graph.add(EndNode())
                anchor.next = end
                pre_merge.add_end(end)
                frames.append(frame)
            merged = self._merge_frames(pre_merge, frames, block.start)
            incoming = [(pre_merge, merged)]
        loop_begin = self.graph.add(LoopBeginNode())
        anchor, entry_frame = incoming[0]
        end = self.graph.add(EndNode())
        anchor.next = end
        loop_begin.add_end(end)
        # One phi per slot; loop-end inputs are appended when back edges
        # are connected.
        slots = entry_frame.slots()
        local_count = len(entry_frame.locals)
        live = self.liveness.live_before(block.start)
        phis: List[Optional[PhiNode]] = []
        merged_slots: List[Node] = []
        for index in range(len(slots)):
            if index < local_count and index not in live:
                # Dead local: no loop phi, no phantom loop-carried value.
                phis.append(None)
                merged_slots.append(self.graph.null)
                continue
            phi = PhiNode(merge=loop_begin)
            phi.values.append(slots[index])
            self.graph.add(phi)
            phis.append(phi)
            merged_slots.append(phi)
        self._loop_phis[block.index] = phis
        self._loop_begins[block.index] = loop_begin
        result = entry_frame.copy()
        result.set_slots(merged_slots)
        self._anchor = loop_begin
        return result

    def _connect_edge(self, anchor: FixedWithNextNode, frame: BuilderFrame,
                      source_block: int, target_block: int):
        target = self.block_graph.blocks[target_block]
        if source_block in target.back_edge_preds:
            loop_begin = self._loop_begins.get(target_block)
            if loop_begin is None:
                # Reachable only from an OSR entry that sits inside this
                # loop: the header was never materialized.  Bail out —
                # the enclosing loop's own header is the OSR point.
                raise GraphBuildError(
                    f"backedge into unmaterialized loop header "
                    f"{target_block} (OSR entry inside a nested loop)")
            loop_end = self.graph.add(LoopEndNode())
            anchor.next = loop_end
            loop_begin.add_loop_end(loop_end)
            slots = frame.slots()
            for phi, value in zip(self._loop_phis[target_block], slots):
                if phi is not None:
                    phi.values.append(value)
            return
        self._incoming.setdefault(target_block, []).append(
            (anchor, frame.copy()))

    # -- terminators ---------------------------------------------------------

    def _process_terminator(self, block: BasicBlock, bci: int,
                            insn: Instruction, frame: BuilderFrame):
        op = insn.op
        if op is Op.GOTO:
            self._connect_edge(self._anchor, frame, block.index,
                               self.block_graph.block_of_bci[insn.operand])
            return
        if op is Op.RETURN or op is Op.RETURN_VALUE:
            value = frame.pop() if op is Op.RETURN_VALUE else None
            if self._method_locks:
                exit_node = MonitorExitNode(object=self._method_locks[0])
                self._append(exit_node)
            ret = self.graph.add(ReturnNode(value=value))
            self._anchor.next = ret
            return
        if op is Op.THROW:
            state = self._make_state(bci, frame)
            deopt = self.graph.add(DeoptimizeNode("throw", state=state))
            self._anchor.next = deopt
            return

        # Conditional branches.
        stack_before = list(frame.stack)
        taken_is_true = True
        if op in INT_COMPARE_BRANCHES:
            b, a = frame.pop(), frame.pop()
            condition = self.graph.add(
                IntCompareNode(_COMPARE_OPS[op], x=a, y=b))
        elif op in REF_COMPARE_BRANCHES:
            b, a = frame.pop(), frame.pop()
            condition = self._append(RefEqualsNode(x=a, y=b))
            taken_is_true = op is Op.IF_ACMP_EQ
        elif op in NULL_BRANCHES:
            a = frame.pop()
            condition = self._append(IsNullNode(value=a))
            taken_is_true = op is Op.IF_NULL
        else:
            raise GraphBuildError(f"unhandled terminator {insn}")

        taken_block = self.block_graph.block_of_bci[insn.operand]
        fall_block = self.block_graph.block_of_bci[bci + 1]
        speculated = self._try_speculate(block, bci, condition,
                                         taken_is_true, frame,
                                         stack_before, taken_block,
                                         fall_block)
        if speculated:
            return

        if_node = self.graph.add(IfNode(condition=condition))
        if self.profile is not None:
            taken_p = self.profile.taken_probability(self.method, bci)
            if_node.true_probability = (
                taken_p if taken_is_true else 1.0 - taken_p)
        self._anchor.next = if_node
        true_begin = self.graph.add(BeginNode())
        false_begin = self.graph.add(BeginNode())
        if_node.true_successor = true_begin
        if_node.false_successor = false_begin

        taken_begin = true_begin if taken_is_true else false_begin
        fall_begin = false_begin if taken_is_true else true_begin
        self._connect_edge(taken_begin, frame, block.index, taken_block)
        self._connect_edge(fall_begin, frame, block.index, fall_block)

    def _try_speculate(self, block: BasicBlock, bci: int, condition: Node,
                       taken_is_true: bool, frame: BuilderFrame,
                       stack_before: List[Node], taken_block: int,
                       fall_block: int) -> bool:
        """Replace a never-taken (or always-taken) branch with a guard.

        The dead side's bytecode is not compiled at all; if the guard
        ever fails, execution deoptimizes and the interpreter takes the
        "impossible" path (Section 2's optimistic assumptions)."""
        context = self.continuation[2] if self.continuation else None
        if context is not None and context[0] == "branch" and \
                context[1] == bci:
            # Deoptless dispatch context: the observed failing branch
            # direction is compiled as an *assumption* guard, not a
            # profile fact — the recorder never sees it, so the live
            # profile (which has watched both directions) cannot falsify
            # the variant; the context rides the cache key instead.  A
            # guard failure here simply dispatches to a sibling variant.
            outcome = bool(context[2])
            return self._speculate_branch(block, bci, outcome, condition,
                                          taken_is_true, frame,
                                          stack_before, taken_block,
                                          fall_block)
        if not self.speculate_branches:
            return False
        # A loop that tiers up through OSR runs its iterations in
        # compiled code, where the interpreter no longer profiles, so
        # its exit branch looks never-taken however often it exits;
        # speculating on it would deoptimize at every exit.  Two cases:
        # the loop this very graph OSR-enters (its exit has *never*
        # been interpreted — the compilation request arrived mid-loop),
        # and loops that tiered up earlier (profile fact).  Covers the
        # while-shape (exit conditional in the header block) and the
        # do-while-shape (backward conditional jump to the header).
        if block.is_loop_header and \
                (block.start == self.osr_bci
                 or self.profile.loop_has_osr(self.method, block.start)):
            return False
        target_start = self.block_graph.blocks[taken_block].start
        if target_start <= bci and \
                (target_start == self.osr_bci
                 or self.profile.loop_has_osr(self.method, target_start)):
            return False
        outcome = self.profile.branch_outcome(
            self.method, bci, self.speculation_min_samples)
        if outcome is None:
            return False
        return self._speculate_branch(block, bci, outcome, condition,
                                      taken_is_true, frame, stack_before,
                                      taken_block, fall_block)

    def _speculate_branch(self, block: BasicBlock, bci: int,
                          outcome: bool, condition: Node,
                          taken_is_true: bool, frame: BuilderFrame,
                          stack_before: List[Node], taken_block: int,
                          fall_block: int) -> bool:
        if outcome:
            survivor, condition_true = taken_block, taken_is_true
        else:
            survivor, condition_true = fall_block, not taken_is_true
        state = self._make_state(bci, frame, stack_before)
        guard = FixedGuardNode("unreached_branch",
                               negated=not condition_true,
                               condition=condition, state=state)
        self._append(guard)
        self._connect_edge(self._anchor, frame, block.index, survivor)
        return True

    # -- straight-line instructions ---------------------------------------------

    def _process_instruction(self, bci: int, insn: Instruction,
                             frame: BuilderFrame):
        graph = self.graph
        op = insn.op
        stack_before = list(frame.stack)

        if op is Op.CONST:
            frame.push(graph.constant(insn.operand))
        elif op is Op.LOAD:
            frame.push(frame.locals[insn.operand])
        elif op is Op.STORE:
            frame.locals[insn.operand] = frame.pop()
        elif op is Op.POP:
            frame.pop()
        elif op is Op.DUP:
            frame.push(frame.stack[-1])
        elif op is Op.SWAP:
            frame.stack[-1], frame.stack[-2] = (frame.stack[-2],
                                                frame.stack[-1])
        elif op in _ARITH_OPS:
            b, a = frame.pop(), frame.pop()
            frame.push(graph.add(
                BinaryArithmeticNode(_ARITH_OPS[op], x=a, y=b)))
        elif op is Op.DIV or op is Op.REM:
            b, a = frame.pop(), frame.pop()
            non_zero = graph.add(
                IntCompareNode("ne", x=b, y=graph.constant(0)))
            state = self._make_state(bci, frame, stack_before)
            self._append(FixedGuardNode("div_by_zero", condition=non_zero,
                                        state=state))
            name = "div" if op is Op.DIV else "rem"
            frame.push(graph.add(BinaryArithmeticNode(name, x=a, y=b)))
        elif op is Op.NEG:
            frame.push(graph.add(NegNode(value=frame.pop())))

        elif op is Op.NEW:
            node = self._append(NewInstanceNode(insn.operand))
            frame.push(node)
        elif op is Op.NEWARRAY:
            length = frame.pop()
            non_negative = graph.add(
                IntCompareNode("ge", x=length, y=graph.constant(0)))
            state = self._make_state(bci, frame, stack_before)
            self._append(FixedGuardNode("negative_array_size",
                                        condition=non_negative,
                                        state=state))
            node = self._append(NewArrayNode(insn.operand, length=length))
            frame.push(node)
        elif op is Op.GETFIELD:
            obj = frame.pop()
            self._null_guard(obj, bci, frame, stack_before)
            frame.push(self._append(LoadFieldNode(insn.operand,
                                                  object=obj)))
        elif op is Op.PUTFIELD:
            value, obj = frame.pop(), frame.pop()
            self._null_guard(obj, bci, frame, stack_before)
            store = self._append(StoreFieldNode(insn.operand, object=obj,
                                                value=value))
            store.state_after = self._make_state(bci + 1, frame)
        elif op is Op.GETSTATIC:
            frame.push(self._append(LoadStaticNode(insn.operand)))
        elif op is Op.PUTSTATIC:
            value = frame.pop()
            store = self._append(StoreStaticNode(insn.operand,
                                                 value=value))
            store.state_after = self._make_state(bci + 1, frame)
        elif op is Op.ALOAD:
            index, array = frame.pop(), frame.pop()
            self._null_guard(array, bci, frame, stack_before)
            self._bounds_guard(array, index, bci, frame, stack_before)
            frame.push(self._append(LoadIndexedNode(array=array,
                                                    index=index)))
        elif op is Op.ASTORE:
            value, index, array = frame.pop(), frame.pop(), frame.pop()
            self._null_guard(array, bci, frame, stack_before)
            self._bounds_guard(array, index, bci, frame, stack_before)
            store = self._append(StoreIndexedNode(array=array, index=index,
                                                  value=value))
            store.state_after = self._make_state(bci + 1, frame)
        elif op is Op.ARRAYLENGTH:
            array = frame.pop()
            self._null_guard(array, bci, frame, stack_before)
            frame.push(self._append(ArrayLengthNode(array=array)))
        elif op is Op.INSTANCEOF:
            frame.push(self._append(InstanceOfNode(insn.operand,
                                                   value=frame.pop())))
        elif op is Op.CHECKCAST:
            obj = frame.stack[-1]
            is_null = self._append(IsNullNode(value=obj))
            instance_of = self._append(InstanceOfNode(insn.operand,
                                                      value=obj))
            either = graph.add(BinaryArithmeticNode("or", x=is_null,
                                                    y=instance_of))
            state = self._make_state(bci, frame, stack_before)
            self._append(FixedGuardNode("class_cast", condition=either,
                                        state=state))
        elif op in _INVOKE_KINDS:
            self._process_invoke(bci, insn, frame, stack_before)
        elif op is Op.MONITORENTER:
            obj = frame.pop()
            self._null_guard(obj, bci, frame, stack_before)
            enter = self._append(MonitorEnterNode(object=obj))
            enter.state_after = self._make_state(bci + 1, frame)
        elif op is Op.MONITOREXIT:
            obj = frame.pop()
            self._null_guard(obj, bci, frame, stack_before)
            exit_node = self._append(MonitorExitNode(object=obj))
            exit_node.state_after = self._make_state(bci + 1, frame)
        else:  # pragma: no cover
            raise GraphBuildError(f"unhandled opcode {op}")

    def _bounds_guard(self, array: Node, index: Node, bci: int,
                      frame: BuilderFrame, stack_before: List[Node]):
        length = self._append(ArrayLengthNode(array=array))
        in_bounds = self.graph.add(
            IntCompareNode("below", x=index, y=length))
        state = self._make_state(bci, frame, stack_before)
        self._append(FixedGuardNode("bounds_check", condition=in_bounds,
                                    state=state))

    def _process_invoke(self, bci: int, insn: Instruction,
                        frame: BuilderFrame, stack_before: List[Node]):
        ref = insn.operand
        kind = _INVOKE_KINDS[insn.op]
        callee = self.program.resolve_method(ref.class_name,
                                             ref.method_name)
        args = frame.pop_many(ref.arg_count)
        if kind in ("virtual", "special"):
            self._null_guard(args[0], bci, frame, stack_before)
        context = self.continuation[2] if self.continuation else None
        if kind == "virtual" and context is not None and \
                context[0] == "receiver" and context[1] == bci:
            devirt = self._devirtualize(bci, ref, args, frame,
                                        stack_before, context[2])
            if devirt is not None:
                kind, ref, callee = devirt
        invoke = InvokeNode(kind, ref, callee.return_type, bci)
        invoke.source_method = self.method
        self._append(invoke)
        invoke.arguments.extend(args)
        invoke.state_after = self._make_state(bci, frame)
        if kind == "virtual":
            # Deopt target for type-speculation guards: the arguments
            # are still on the stack, so the interpreter can re-execute
            # the invokevirtual and dispatch honestly.
            invoke.state_before = self._make_state(bci, frame,
                                                   stack_before)
        if invoke.has_value:
            frame.push(invoke)

    def _devirtualize(self, bci: int, ref, args: List[Node],
                      frame: BuilderFrame, stack_before: List[Node],
                      class_name: str):
        """Deoptless receiver context: guard the observed exact receiver
        type and call the resolved override directly — the builder-level
        twin of ``InliningPhase._insert_type_guard`` (continuation
        graphs skip inlining, so the specialization happens here).
        Returns ``(kind, ref, callee)`` or None when the type cannot be
        proven exact."""
        if self.program.has_subclasses(class_name):
            return None  # instanceof would not prove the exact type
        resolved = self.program.resolve_virtual(class_name,
                                                ref.method_name)
        if resolved.is_native:
            return None
        check = self._append(InstanceOfNode(class_name, value=args[0]))
        state = self._make_state(bci, frame, stack_before)
        self._append(FixedGuardNode("type_speculation", condition=check,
                                    state=state))
        # Re-anchor the ref at the guarded receiver class: the direct
        # call resolves through it to the same override the guard
        # proved (resolve_method walks superclasses).
        direct = MethodRef(class_name, ref.method_name, ref.arg_count)
        return "special", direct, resolved


def build_graph(program: Program, method: JMethod,
                profile: Optional[Profile] = None,
                speculate_branches: bool = False,
                speculation_min_samples: int = 50,
                osr_bci: Optional[int] = None,
                continuation: Optional[Tuple[int, int, Optional[tuple]]]
                = None) -> Graph:
    """Build and verify the IR graph for *method*.

    With *osr_bci* the graph is an on-stack-replacement entry variant:
    execution enters at that loop header, parameters carry the live
    interpreter locals (see :attr:`Graph.osr_local_slots`).  With
    *continuation* (``(bci, stack_depth, context)``) it is a deoptless
    continuation: entry at an arbitrary deopt bci with *stack_depth*
    operand-stack parameters after the live locals, specialized against
    the dispatch *context* (see :mod:`repro.jit.deoptless`)."""
    return GraphBuilder(program, method, profile, speculate_branches,
                        speculation_min_samples, osr_bci=osr_bci,
                        continuation=continuation).build()
