"""AST node definitions for the source language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Node:
    line: int = 0
    column: int = 0


# ---------------------------------------------------------------- types

@dataclass
class TypeRef(Node):
    """A syntactic type: ``int``, ``boolean``, ``void``, a class name, or
    an array of one of those (``is_array``)."""

    name: str = ""
    is_array: bool = False

    def __str__(self):
        return f"{self.name}[]" if self.is_array else self.name


# ------------------------------------------------------------ expressions

@dataclass
class Expr(Node):
    #: Filled in by the type checker.
    type: Optional[TypeRef] = None


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class BoolLiteral(Expr):
    value: bool = False


@dataclass
class NullLiteral(Expr):
    pass


@dataclass
class StringLiteral(Expr):
    value: str = ""


@dataclass
class VarRef(Expr):
    name: str = ""
    #: Resolved by the type checker: "local", "field", "static".
    resolution: Optional[str] = None
    #: For fields/statics: the declaring class name.
    declaring_class: Optional[str] = None
    #: For locals: the slot index (set by codegen).
    slot: Optional[int] = None


@dataclass
class ThisRef(Expr):
    pass


@dataclass
class FieldAccess(Expr):
    receiver: Optional[Expr] = None
    name: str = ""
    #: "instance", "static" or "arraylength"; set by the type checker.
    resolution: Optional[str] = None
    declaring_class: Optional[str] = None


@dataclass
class ArrayIndex(Expr):
    array: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Ternary(Expr):
    """``condition ? when_true : when_false`` (right-associative)."""

    condition: Optional[Expr] = None
    when_true: Optional[Expr] = None
    when_false: Optional[Expr] = None


@dataclass
class InstanceOf(Expr):
    operand: Optional[Expr] = None
    class_name: str = ""


@dataclass
class Cast(Expr):
    class_name: str = ""
    operand: Optional[Expr] = None


@dataclass
class NewObject(Expr):
    class_name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class NewArray(Expr):
    elem_type: Optional[TypeRef] = None
    length: Optional[Expr] = None


@dataclass
class Call(Expr):
    """A method call.

    ``receiver`` is ``None`` for unqualified calls (resolved against the
    enclosing class), an expression for instance calls, or a
    :class:`VarRef` naming a class for static calls (disambiguated by the
    type checker via ``is_static_receiver``).
    """

    receiver: Optional[Expr] = None
    method_name: str = ""
    args: List[Expr] = field(default_factory=list)
    is_static_receiver: bool = False
    declaring_class: Optional[str] = None


# ------------------------------------------------------------- statements

@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class LocalDecl(Stmt):
    decl_type: Optional[TypeRef] = None
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """``target = value``; target is VarRef, FieldAccess or ArrayIndex."""

    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class If(Stmt):
    condition: Optional[Expr] = None
    then_branch: Optional[Stmt] = None
    else_branch: Optional[Stmt] = None


@dataclass
class While(Stmt):
    condition: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    condition: Optional[Expr] = None
    update: Optional[Stmt] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Throw(Stmt):
    value: Optional[Expr] = None


@dataclass
class Synchronized(Stmt):
    monitor: Optional[Expr] = None
    body: Optional[Stmt] = None


# ------------------------------------------------------------ declarations

@dataclass
class FieldDecl(Node):
    decl_type: Optional[TypeRef] = None
    name: str = ""
    is_static: bool = False


@dataclass
class Param(Node):
    decl_type: Optional[TypeRef] = None
    name: str = ""


@dataclass
class MethodDecl(Node):
    name: str = ""
    return_type: Optional[TypeRef] = None
    params: List[Param] = field(default_factory=list)
    body: Optional[Block] = None
    is_static: bool = False
    is_synchronized: bool = False
    is_native: bool = False
    is_constructor: bool = False


@dataclass
class ClassDecl(Node):
    name: str = ""
    superclass: Optional[str] = None
    fields: List[FieldDecl] = field(default_factory=list)
    methods: List[MethodDecl] = field(default_factory=list)


@dataclass
class CompilationUnit(Node):
    classes: List[ClassDecl] = field(default_factory=list)
