"""Shared error types for the source language frontend."""

from __future__ import annotations


class SourceError(Exception):
    """An error with a source position."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.message = message
        self.line = line
        self.column = column
        where = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{where}")


class LexError(SourceError):
    pass


class ParseError(SourceError):
    pass


class TypeError_(SourceError):
    """A type-checking error (named to avoid shadowing the builtin)."""
