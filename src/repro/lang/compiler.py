"""Convenience front door: source text -> verified :class:`Program`."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..bytecode import Program, verify_program
from .codegen import generate_program
from .parser import parse
from .typechecker import typecheck


def compile_source(source: str,
                   natives: Optional[Dict[str, Callable]] = None,
                   verify: bool = True) -> Program:
    """Compile *source* into a verified bytecode :class:`Program`.

    *natives* maps ``"Class.method"`` to a Python callable
    ``(interpreter, args) -> value`` implementing a ``native`` method
    declared in the source, or to a ``(callable, cycle_cost)`` tuple
    when the native models an expensive precompiled kernel on the
    simulated machine.
    """
    unit = parse(source)
    checker = typecheck(unit)
    program = generate_program(checker, unit)
    if natives:
        for qualified, impl in natives.items():
            method = program.method(qualified)
            if not method.is_native:
                raise ValueError(f"{qualified} is not declared native")
            if isinstance(impl, tuple):
                method.native_impl, method.native_cycle_cost = impl
            else:
                method.native_impl = impl
    if verify:
        verify_program(program)
    return program
