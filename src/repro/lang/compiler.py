"""Convenience front door: source text -> verified :class:`Program`."""

from __future__ import annotations

import copy
import os
from collections import OrderedDict
from typing import Callable, Dict, Optional

from ..bytecode import Program, verify_program
from .codegen import generate_program
from .parser import parse
from .typechecker import typecheck

#: Source-text -> pristine verified Program memo.  The language frontend
#: (parse, typecheck, codegen, bytecode verify) is deterministic in the
#: source text, so its output can be cloned instead of rebuilt — the
#: fuzzer compiles each program three times (one per engine) and the
#: benchmark harness once per configuration.  Bounded LRU; disable with
#: ``REPRO_NO_SOURCE_MEMO=1``.
_MEMO_CAPACITY = 64
_memo: "OrderedDict[str, Program]" = OrderedDict()


def compile_source(source: str,
                   natives: Optional[Dict[str, Callable]] = None,
                   verify: bool = True) -> Program:
    """Compile *source* into a verified bytecode :class:`Program`.

    *natives* maps ``"Class.method"`` to a Python callable
    ``(interpreter, args) -> value`` implementing a ``native`` method
    declared in the source, or to a ``(callable, cycle_cost)`` tuple
    when the native models an expensive precompiled kernel on the
    simulated machine.

    Every call returns a **private** Program (a deep copy of the memoized
    build), so callers may mutate theirs freely — statics, profiles and
    native bindings never leak between the fuzzer's engines or the
    harness's configurations.
    """
    program = _frontend(source, verify)
    if natives:
        for qualified, impl in natives.items():
            method = program.method(qualified)
            if not method.is_native:
                raise ValueError(f"{qualified} is not declared native")
            if isinstance(impl, tuple):
                method.native_impl, method.native_cycle_cost = impl
            else:
                method.native_impl = impl
        # Direct attribute writes bypass _invalidate_caches; the content
        # fingerprint covers native presence/cost, so drop it explicitly.
        program._content_fingerprint = None
    return program


def _frontend(source: str, verify: bool) -> Program:
    if not verify or os.environ.get("REPRO_NO_SOURCE_MEMO"):
        return _build(source, verify)
    cached = _memo.get(source)
    if cached is None:
        cached = _build(source, verify)
        _memo[source] = cached
        while len(_memo) > _MEMO_CAPACITY:
            _memo.popitem(last=False)
    else:
        _memo.move_to_end(source)
    # deepcopy treats functions/bound methods as atomic, so any native
    # impls already applied would be shared — the memo therefore stores
    # only pristine (natives-free) programs and clones per call.
    return copy.deepcopy(cached)


def _build(source: str, verify: bool) -> Program:
    unit = parse(source)
    checker = typecheck(unit)
    program = generate_program(checker, unit)
    if verify:
        verify_program(program)
    return program
