"""Bytecode generation from the type-checked AST."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..bytecode import (BytecodeBuilder, JClass, JField, JMethod, Label, Op,
                        Program)
from . import ast_nodes as ast
from .errors import TypeError_
from .typechecker import TypeChecker, is_reference, same_type

_SWAPPED_COMPARE = {"<": Op.IF_LT, "<=": Op.IF_LE, ">": Op.IF_GT,
                    ">=": Op.IF_GE, "==": Op.IF_EQ, "!=": Op.IF_NE}
_NEGATED_COMPARE = {"<": Op.IF_GE, "<=": Op.IF_GT, ">": Op.IF_LE,
                    ">=": Op.IF_LT, "==": Op.IF_NE, "!=": Op.IF_EQ}
_ARITH_OP = {"+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV,
             "%": Op.REM, "&": Op.AND, "|": Op.OR, "^": Op.XOR,
             "<<": Op.SHL, ">>": Op.SHR}


class _LoopContext:
    """Targets and monitor depth for break/continue inside a loop."""

    def __init__(self, break_label: Label, continue_label: Label,
                 monitor_depth: int):
        self.break_label = break_label
        self.continue_label = continue_label
        self.monitor_depth = monitor_depth


class MethodGenerator:
    """Generates bytecode for one method body."""

    def __init__(self, checker: TypeChecker, cdecl: ast.ClassDecl,
                 mdecl: ast.MethodDecl):
        self.checker = checker
        self.cdecl = cdecl
        self.mdecl = mdecl
        self.builder = BytecodeBuilder()
        self.slots: Dict[str, int] = {}
        self.next_slot = 0
        self.scope_stack: List[List[str]] = [[]]
        self.loops: List[_LoopContext] = []
        #: Slots holding objects locked by enclosing synchronized blocks.
        self.monitor_slots: List[int] = []

    # -- slots -------------------------------------------------------------

    def _declare(self, name: str) -> int:
        slot = self.next_slot
        self.next_slot += 1
        self.slots[name] = slot
        self.scope_stack[-1].append(name)
        return slot

    def _temp_slot(self) -> int:
        slot = self.next_slot
        self.next_slot += 1
        return slot

    def _push_scope(self):
        self.scope_stack.append([])

    def _pop_scope(self):
        for name in self.scope_stack.pop():
            del self.slots[name]

    # -- entry --------------------------------------------------------------

    def generate(self) -> List:
        if not self.mdecl.is_static:
            self._declare("this")
        for param in self.mdecl.params:
            self._declare(param.name)
        self._gen_block(self.mdecl.body)
        # Implicit return for void methods falling off the end.
        if self.mdecl.return_type.name == "void":
            self.builder.return_void()
        else:
            # The verifier rejects falling off the end; emit a trap value
            # return only if the last statement isn't a guaranteed exit.
            # A conservative THROW keeps the verifier happy and traps at
            # runtime if ever reached.
            self.builder.const(None).throw()
        return self.builder.finish()

    # -- statements -----------------------------------------------------------

    def _gen_block(self, block: ast.Block) -> None:
        self._push_scope()
        for stmt in block.statements:
            self._gen_stmt(stmt)
        self._pop_scope()

    def _gen_stmt(self, stmt: ast.Stmt) -> None:
        b = self.builder
        if isinstance(stmt, ast.Block):
            self._gen_block(stmt)
        elif isinstance(stmt, ast.LocalDecl):
            slot = self._declare(stmt.name)
            if stmt.init is not None:
                self._gen_expr(stmt.init)
                b.store(slot)
        elif isinstance(stmt, ast.Assign):
            self._gen_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._gen_expr(stmt.expr)
            if stmt.expr.type is not None and stmt.expr.type.name != "void":
                b.pop()
        elif isinstance(stmt, ast.If):
            else_label = b.new_label("else")
            self._gen_condition(stmt.condition, else_label,
                                jump_if_true=False)
            self._gen_stmt(stmt.then_branch)
            if stmt.else_branch is not None:
                end_label = b.new_label("endif")
                b.goto(end_label)
                b.bind(else_label)
                self._gen_stmt(stmt.else_branch)
                b.bind(end_label)
            else:
                b.bind(else_label)
        elif isinstance(stmt, ast.While):
            head = b.new_label("while.head")
            exit_ = b.new_label("while.exit")
            b.bind(head)
            self._gen_condition(stmt.condition, exit_, jump_if_true=False)
            self.loops.append(_LoopContext(exit_, head,
                                           len(self.monitor_slots)))
            self._gen_stmt(stmt.body)
            self.loops.pop()
            b.goto(head)
            b.bind(exit_)
        elif isinstance(stmt, ast.For):
            self._push_scope()
            if stmt.init is not None:
                self._gen_stmt(stmt.init)
            head = b.new_label("for.head")
            update = b.new_label("for.update")
            exit_ = b.new_label("for.exit")
            b.bind(head)
            if stmt.condition is not None:
                self._gen_condition(stmt.condition, exit_,
                                    jump_if_true=False)
            self.loops.append(_LoopContext(exit_, update,
                                           len(self.monitor_slots)))
            self._gen_stmt(stmt.body)
            self.loops.pop()
            b.bind(update)
            if stmt.update is not None:
                self._gen_stmt(stmt.update)
            b.goto(head)
            b.bind(exit_)
            self._pop_scope()
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._gen_expr(stmt.value)
                self._exit_monitors(0)
                b.return_value()
            else:
                self._exit_monitors(0)
                b.return_void()
        elif isinstance(stmt, ast.Break):
            context = self.loops[-1]
            self._exit_monitors(context.monitor_depth)
            b.goto(context.break_label)
        elif isinstance(stmt, ast.Continue):
            context = self.loops[-1]
            self._exit_monitors(context.monitor_depth)
            b.goto(context.continue_label)
        elif isinstance(stmt, ast.Throw):
            self._gen_expr(stmt.value)
            b.throw()
        elif isinstance(stmt, ast.Synchronized):
            self._gen_expr(stmt.monitor)
            slot = self._temp_slot()
            b.dup().store(slot).monitorenter()
            self.monitor_slots.append(slot)
            self._gen_stmt(stmt.body)
            self.monitor_slots.pop()
            b.load(slot).monitorexit()
        else:  # pragma: no cover
            raise AssertionError(f"unhandled statement {stmt!r}")

    def _exit_monitors(self, down_to: int) -> None:
        """Emit monitorexit for blocks being left by a jump."""
        for slot in reversed(self.monitor_slots[down_to:]):
            self.builder.load(slot).monitorexit()

    def _gen_assign(self, stmt: ast.Assign) -> None:
        b = self.builder
        target = stmt.target
        if isinstance(target, ast.VarRef):
            if target.resolution == "local":
                self._gen_expr(stmt.value)
                b.store(self.slots[target.name])
            elif target.resolution == "field":
                b.load(self.slots["this"])
                self._gen_expr(stmt.value)
                b.putfield(target.declaring_class, target.name)
            elif target.resolution == "static":
                self._gen_expr(stmt.value)
                b.putstatic(target.declaring_class, target.name)
            else:  # pragma: no cover
                raise AssertionError(target.resolution)
        elif isinstance(target, ast.FieldAccess):
            if target.resolution == "static":
                self._gen_expr(stmt.value)
                b.putstatic(target.declaring_class, target.name)
            else:
                self._gen_expr(target.receiver)
                self._gen_expr(stmt.value)
                b.putfield(target.declaring_class, target.name)
        elif isinstance(target, ast.ArrayIndex):
            self._gen_expr(target.array)
            self._gen_expr(target.index)
            self._gen_expr(stmt.value)
            b.astore()
        else:  # pragma: no cover
            raise AssertionError(f"bad assignment target {target!r}")

    # -- conditions ------------------------------------------------------------

    def _gen_condition(self, expr: ast.Expr, target: Label,
                       jump_if_true: bool) -> None:
        """Emit code that jumps to *target* when ``expr == jump_if_true``
        and falls through otherwise."""
        b = self.builder
        if isinstance(expr, ast.BoolLiteral):
            if expr.value == jump_if_true:
                b.goto(target)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self._gen_condition(expr.operand, target, not jump_if_true)
            return
        if isinstance(expr, ast.Binary):
            op = expr.op
            if op == "&&":
                if jump_if_true:
                    fall = b.new_label("and.fall")
                    self._gen_condition(expr.left, fall,
                                        jump_if_true=False)
                    self._gen_condition(expr.right, target,
                                        jump_if_true=True)
                    b.bind(fall)
                else:
                    self._gen_condition(expr.left, target,
                                        jump_if_true=False)
                    self._gen_condition(expr.right, target,
                                        jump_if_true=False)
                return
            if op == "||":
                if jump_if_true:
                    self._gen_condition(expr.left, target,
                                        jump_if_true=True)
                    self._gen_condition(expr.right, target,
                                        jump_if_true=True)
                else:
                    fall = b.new_label("or.fall")
                    self._gen_condition(expr.left, fall, jump_if_true=True)
                    self._gen_condition(expr.right, target,
                                        jump_if_true=False)
                    b.bind(fall)
                return
            if op in _SWAPPED_COMPARE:
                left_ref = (is_reference(expr.left.type)
                            or expr.left.type.name == "null")
                self._gen_expr(expr.left)
                self._gen_expr(expr.right)
                if left_ref and op in ("==", "!="):
                    branch = Op.IF_ACMP_EQ if (op == "==") == jump_if_true \
                        else Op.IF_ACMP_NE
                else:
                    table = _SWAPPED_COMPARE if jump_if_true \
                        else _NEGATED_COMPARE
                    branch = table[op]
                b.branch(branch, target)
                return
        # Generic boolean value: compare against zero.
        self._gen_expr(expr)
        b.const(0)
        b.branch(Op.IF_NE if jump_if_true else Op.IF_EQ, target)

    def _gen_bool_value(self, expr: ast.Expr) -> None:
        """Materialize a boolean expression as 0/1 on the stack."""
        b = self.builder
        true_label = b.new_label("bool.true")
        end_label = b.new_label("bool.end")
        self._gen_condition(expr, true_label, jump_if_true=True)
        b.const(0).goto(end_label)
        b.bind(true_label)
        b.const(1)
        b.bind(end_label)

    # -- expressions ------------------------------------------------------------

    def _gen_expr(self, expr: ast.Expr) -> None:
        b = self.builder
        if isinstance(expr, ast.IntLiteral):
            b.const(expr.value)
        elif isinstance(expr, ast.BoolLiteral):
            b.const(1 if expr.value else 0)
        elif isinstance(expr, ast.NullLiteral):
            b.const(None)
        elif isinstance(expr, ast.StringLiteral):
            # Java interns string literals: identical literals are the
            # same object, so reference equality works on them.
            import sys
            b.const(sys.intern(expr.value))
        elif isinstance(expr, ast.ThisRef):
            b.load(self.slots["this"])
        elif isinstance(expr, ast.VarRef):
            if expr.resolution == "local":
                b.load(self.slots[expr.name])
            elif expr.resolution == "field":
                b.load(self.slots["this"])
                b.getfield(expr.declaring_class, expr.name)
            elif expr.resolution == "static":
                b.getstatic(expr.declaring_class, expr.name)
            else:  # pragma: no cover
                raise AssertionError(expr.resolution)
        elif isinstance(expr, ast.FieldAccess):
            if expr.resolution == "static":
                b.getstatic(expr.declaring_class, expr.name)
            elif expr.resolution == "arraylength":
                self._gen_expr(expr.receiver)
                b.arraylength()
            else:
                self._gen_expr(expr.receiver)
                b.getfield(expr.declaring_class, expr.name)
        elif isinstance(expr, ast.ArrayIndex):
            self._gen_expr(expr.array)
            self._gen_expr(expr.index)
            b.aload()
        elif isinstance(expr, ast.Unary):
            if expr.op == "-":
                self._gen_expr(expr.operand)
                b.neg()
            else:  # "!"
                self._gen_bool_value(expr)
        elif isinstance(expr, ast.Binary):
            if expr.op in _ARITH_OP and same_type(expr.type,
                                                  ast.TypeRef(name="int")):
                self._gen_expr(expr.left)
                self._gen_expr(expr.right)
                b.emit(_ARITH_OP[expr.op])
            else:
                self._gen_bool_value(expr)
        elif isinstance(expr, ast.Ternary):
            else_label = b.new_label("ternary.else")
            end_label = b.new_label("ternary.end")
            self._gen_condition(expr.condition, else_label,
                                jump_if_true=False)
            self._gen_expr(expr.when_true)
            b.goto(end_label)
            b.bind(else_label)
            self._gen_expr(expr.when_false)
            b.bind(end_label)
        elif isinstance(expr, ast.InstanceOf):
            self._gen_expr(expr.operand)
            b.instanceof(expr.class_name)
        elif isinstance(expr, ast.Cast):
            self._gen_expr(expr.operand)
            b.checkcast(expr.class_name)
        elif isinstance(expr, ast.NewObject):
            b.new(expr.class_name)
            ctor = self.checker.resolve_method(expr.class_name, "<init>")
            if ctor is not None:
                b.dup()
                for arg in expr.args:
                    self._gen_expr(arg)
                b.invokespecial(ctor.declaring_class, "<init>",
                                1 + len(expr.args))
        elif isinstance(expr, ast.NewArray):
            self._gen_expr(expr.length)
            b.newarray(expr.elem_type.name)
        elif isinstance(expr, ast.Call):
            self._gen_call(expr)
        else:  # pragma: no cover
            raise AssertionError(f"unhandled expression {expr!r}")

    def _gen_call(self, expr: ast.Call) -> None:
        b = self.builder
        if expr.is_static_receiver:
            for arg in expr.args:
                self._gen_expr(arg)
            b.invokestatic(expr.declaring_class, expr.method_name,
                           len(expr.args))
            return
        if expr.receiver is None:
            b.load(self.slots["this"])
        else:
            self._gen_expr(expr.receiver)
        for arg in expr.args:
            self._gen_expr(arg)
        b.invokevirtual(expr.declaring_class, expr.method_name,
                        1 + len(expr.args))


def generate_program(checker: TypeChecker,
                     unit: ast.CompilationUnit) -> Program:
    """Generate a :class:`Program` from a type-checked unit."""
    program = Program()
    program.define_class("String")

    # Declare all classes/fields/method shells first (mutual references).
    for cdecl in unit.classes:
        jclass = program.define_class(cdecl.name,
                                      cdecl.superclass or "Object")
        for fdecl in cdecl.fields:
            jclass.add_field(JField(fdecl.name, str(fdecl.decl_type),
                                    fdecl.is_static))
        for mdecl in cdecl.methods:
            param_types = [str(p.decl_type) for p in mdecl.params]
            if not mdecl.is_static:
                param_types.insert(0, cdecl.name)
            jclass.add_method(JMethod(
                mdecl.name, param_types, str(mdecl.return_type),
                is_static=mdecl.is_static,
                is_synchronized=mdecl.is_synchronized,
                is_native=mdecl.is_native))

    # Generate bodies.
    for cdecl in unit.classes:
        jclass = program.lookup_class(cdecl.name)
        for mdecl in cdecl.methods:
            if mdecl.is_native:
                continue
            generator = MethodGenerator(checker, cdecl, mdecl)
            code = generator.generate()
            method = jclass.methods[mdecl.name]
            method.code = code
            method.max_locals = generator.next_slot
    return program
