"""Type checker and name resolver for the source language.

Runs in two passes: first it collects class/field/method signatures (so
mutually recursive classes work), then it checks every method body,
annotating the AST in place with resolved types and resolution kinds the
code generator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from . import ast_nodes as ast
from .errors import TypeError_

INT = ast.TypeRef(name="int")
BOOLEAN = ast.TypeRef(name="boolean")
VOID = ast.TypeRef(name="void")
NULL = ast.TypeRef(name="null")
OBJECT = ast.TypeRef(name="Object")
STRING = ast.TypeRef(name="String")

#: Classes that exist without being declared in source.
BUILTIN_CLASSES = ("Object", "String")

_ARITH_OPS = frozenset("+ - * / % << >> & | ^".split())
_COMPARE_OPS = frozenset("< <= > >=".split())
_EQUALITY_OPS = frozenset(("==", "!="))
_LOGICAL_OPS = frozenset(("&&", "||"))


def is_primitive(t: ast.TypeRef) -> bool:
    return not t.is_array and t.name in ("int", "boolean")


def is_reference(t: ast.TypeRef) -> bool:
    return t.is_array or t.name not in ("int", "boolean", "void")


def same_type(a: ast.TypeRef, b: ast.TypeRef) -> bool:
    return a.name == b.name and a.is_array == b.is_array


@dataclass
class FieldSig:
    name: str
    type: ast.TypeRef
    is_static: bool
    declaring_class: str


@dataclass
class MethodSig:
    name: str
    param_types: List[ast.TypeRef]
    return_type: ast.TypeRef
    is_static: bool
    is_synchronized: bool
    is_native: bool
    declaring_class: str

    @property
    def qualified(self):
        return f"{self.declaring_class}.{self.name}"


@dataclass
class ClassInfo:
    name: str
    superclass: Optional[str]
    fields: Dict[str, FieldSig] = field(default_factory=dict)
    methods: Dict[str, MethodSig] = field(default_factory=dict)


class TypeChecker:
    """Checks a compilation unit and annotates its AST."""

    def __init__(self, unit: ast.CompilationUnit):
        self.unit = unit
        self.classes: Dict[str, ClassInfo] = {}
        # Per-method state:
        self._locals: List[Dict[str, ast.TypeRef]] = []
        self._current_class: Optional[ClassInfo] = None
        self._current_method: Optional[MethodSig] = None
        self._loop_depth = 0

    # -- pass 1: signatures --------------------------------------------

    def collect_signatures(self) -> None:
        for name in BUILTIN_CLASSES:
            superclass = None if name == "Object" else "Object"
            self.classes[name] = ClassInfo(name, superclass)
        for decl in self.unit.classes:
            if decl.name in self.classes:
                raise TypeError_(f"duplicate class {decl.name}", decl.line,
                                 decl.column)
            superclass = decl.superclass or "Object"
            self.classes[decl.name] = ClassInfo(decl.name, superclass)
        for decl in self.unit.classes:
            info = self.classes[decl.name]
            if info.superclass not in self.classes:
                raise TypeError_(
                    f"unknown superclass {info.superclass}", decl.line,
                    decl.column)
            for fdecl in decl.fields:
                self._check_type(fdecl.decl_type, fdecl)
                if fdecl.name in info.fields:
                    raise TypeError_(
                        f"duplicate field {decl.name}.{fdecl.name}",
                        fdecl.line, fdecl.column)
                info.fields[fdecl.name] = FieldSig(
                    fdecl.name, fdecl.decl_type, fdecl.is_static,
                    decl.name)
            for mdecl in decl.methods:
                self._check_type(mdecl.return_type, mdecl, allow_void=True)
                for param in mdecl.params:
                    self._check_type(param.decl_type, param)
                if mdecl.name in info.methods:
                    raise TypeError_(
                        f"duplicate method {decl.name}.{mdecl.name} "
                        "(no overloading)", mdecl.line, mdecl.column)
                info.methods[mdecl.name] = MethodSig(
                    mdecl.name, [p.decl_type for p in mdecl.params],
                    mdecl.return_type, mdecl.is_static,
                    mdecl.is_synchronized, mdecl.is_native, decl.name)
        # Inheritance sanity: no cycles.
        for name in self.classes:
            self._superchain(name)

    def _check_type(self, type_ref: ast.TypeRef, node: ast.Node,
                    allow_void: bool = False) -> None:
        if type_ref.name == "void":
            if not allow_void or type_ref.is_array:
                raise TypeError_("void is not a value type", node.line,
                                 node.column)
            return
        if type_ref.name in ("int", "boolean"):
            return
        if type_ref.name not in self.classes and type_ref.name not in (
                d.name for d in self.unit.classes):
            raise TypeError_(f"unknown type {type_ref.name}", node.line,
                             node.column)

    def _superchain(self, name: str) -> List[ClassInfo]:
        chain = []
        seen = set()
        current: Optional[str] = name
        while current is not None:
            if current in seen:
                raise TypeError_(f"inheritance cycle involving {current}")
            seen.add(current)
            info = self.classes[current]
            chain.append(info)
            current = info.superclass
        return chain

    def is_subclass(self, sub: str, sup: str) -> bool:
        return any(c.name == sup for c in self._superchain(sub))

    def resolve_field(self, class_name: str, name: str
                      ) -> Optional[FieldSig]:
        for info in self._superchain(class_name):
            if name in info.fields:
                return info.fields[name]
        return None

    def resolve_method(self, class_name: str, name: str
                       ) -> Optional[MethodSig]:
        for info in self._superchain(class_name):
            if name in info.methods:
                return info.methods[name]
        return None

    # -- assignability -------------------------------------------------------

    def assignable(self, target: ast.TypeRef, value: ast.TypeRef) -> bool:
        if same_type(target, value):
            return True
        if value.name == "null":
            return is_reference(target)
        if is_primitive(target) or is_primitive(value):
            return False
        if value.is_array:
            return not target.is_array and target.name == "Object"
        if target.is_array:
            return False
        if value.name == "void" or target.name == "void":
            return False
        return self.is_subclass(value.name, target.name)

    # -- pass 2: bodies ---------------------------------------------------------

    def check(self) -> None:
        self.collect_signatures()
        for decl in self.unit.classes:
            self._current_class = self.classes[decl.name]
            for mdecl in decl.methods:
                self._check_method(decl, mdecl)
        self._current_class = None

    def _check_method(self, cdecl: ast.ClassDecl,
                      mdecl: ast.MethodDecl) -> None:
        if mdecl.is_native:
            return
        sig = self.classes[cdecl.name].methods[mdecl.name]
        self._current_method = sig
        scope: Dict[str, ast.TypeRef] = {}
        if not mdecl.is_static:
            scope["this"] = ast.TypeRef(name=cdecl.name)
        for param in mdecl.params:
            if param.name in scope:
                raise TypeError_(f"duplicate parameter {param.name}",
                                 param.line, param.column)
            scope[param.name] = param.decl_type
        self._locals = [scope]
        self._loop_depth = 0
        self._check_stmt(mdecl.body)
        self._locals = []
        self._current_method = None

    # -- statements ---------------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._locals.append({})
            for inner in stmt.statements:
                self._check_stmt(inner)
            self._locals.pop()
        elif isinstance(stmt, ast.LocalDecl):
            self._check_type(stmt.decl_type, stmt)
            for scope in self._locals:
                if stmt.name in scope:
                    raise TypeError_(f"duplicate local {stmt.name}",
                                     stmt.line, stmt.column)
            if stmt.init is not None:
                init_type = self._check_expr(stmt.init)
                if not self.assignable(stmt.decl_type, init_type):
                    raise TypeError_(
                        f"cannot assign {init_type} to {stmt.decl_type}",
                        stmt.line, stmt.column)
            self._locals[-1][stmt.name] = stmt.decl_type
        elif isinstance(stmt, ast.Assign):
            target_type = self._check_expr(stmt.target, as_target=True)
            value_type = self._check_expr(stmt.value)
            if not self.assignable(target_type, value_type):
                raise TypeError_(
                    f"cannot assign {value_type} to {target_type}",
                    stmt.line, stmt.column)
        elif isinstance(stmt, ast.ExprStmt):
            expr = stmt.expr
            if not isinstance(expr, (ast.Call, ast.NewObject,
                                     ast.NewArray)):
                raise TypeError_("expression statement has no effect",
                                 stmt.line, stmt.column)
            self._check_expr(expr)
        elif isinstance(stmt, ast.If):
            self._check_condition(stmt.condition)
            self._check_stmt(stmt.then_branch)
            if stmt.else_branch is not None:
                self._check_stmt(stmt.else_branch)
        elif isinstance(stmt, ast.While):
            self._check_condition(stmt.condition)
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            self._locals.append({})
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.condition is not None:
                self._check_condition(stmt.condition)
            if stmt.update is not None:
                self._check_stmt(stmt.update)
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
            self._locals.pop()
        elif isinstance(stmt, ast.Return):
            expected = self._current_method.return_type
            if stmt.value is None:
                if expected.name != "void":
                    raise TypeError_("missing return value", stmt.line,
                                     stmt.column)
            else:
                if expected.name == "void":
                    raise TypeError_("void method returns a value",
                                     stmt.line, stmt.column)
                actual = self._check_expr(stmt.value)
                if not self.assignable(expected, actual):
                    raise TypeError_(
                        f"cannot return {actual} as {expected}",
                        stmt.line, stmt.column)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                raise TypeError_("break/continue outside a loop",
                                 stmt.line, stmt.column)
        elif isinstance(stmt, ast.Throw):
            value_type = self._check_expr(stmt.value)
            if not is_reference(value_type) and value_type.name != "null":
                raise TypeError_("can only throw references", stmt.line,
                                 stmt.column)
        elif isinstance(stmt, ast.Synchronized):
            monitor_type = self._check_expr(stmt.monitor)
            if not is_reference(monitor_type):
                raise TypeError_("synchronized needs a reference",
                                 stmt.line, stmt.column)
            self._check_stmt(stmt.body)
        else:  # pragma: no cover
            raise AssertionError(f"unhandled statement {stmt!r}")

    def _check_condition(self, expr: ast.Expr) -> None:
        cond_type = self._check_expr(expr)
        if not same_type(cond_type, BOOLEAN):
            raise TypeError_(f"condition must be boolean, got {cond_type}",
                             expr.line, expr.column)

    # -- expressions -------------------------------------------------------------

    def _lookup_local(self, name: str) -> Optional[ast.TypeRef]:
        for scope in reversed(self._locals):
            if name in scope:
                return scope[name]
        return None

    def _check_expr(self, expr: ast.Expr,
                    as_target: bool = False) -> ast.TypeRef:
        result = self._infer(expr, as_target)
        expr.type = result
        return result

    def _infer(self, expr: ast.Expr, as_target: bool) -> ast.TypeRef:
        if isinstance(expr, ast.IntLiteral):
            return INT
        if isinstance(expr, ast.BoolLiteral):
            return BOOLEAN
        if isinstance(expr, ast.NullLiteral):
            return NULL
        if isinstance(expr, ast.StringLiteral):
            return STRING
        if isinstance(expr, ast.ThisRef):
            this_type = self._lookup_local("this")
            if this_type is None:
                raise TypeError_("'this' in a static context", expr.line,
                                 expr.column)
            return this_type
        if isinstance(expr, ast.VarRef):
            return self._infer_var(expr, as_target)
        if isinstance(expr, ast.FieldAccess):
            return self._infer_field_access(expr, as_target)
        if isinstance(expr, ast.ArrayIndex):
            array_type = self._check_expr(expr.array)
            if not array_type.is_array:
                raise TypeError_(f"indexing non-array {array_type}",
                                 expr.line, expr.column)
            index_type = self._check_expr(expr.index)
            if not same_type(index_type, INT):
                raise TypeError_("array index must be int", expr.line,
                                 expr.column)
            return ast.TypeRef(name=array_type.name)
        if isinstance(expr, ast.Unary):
            operand = self._check_expr(expr.operand)
            if expr.op == "!":
                if not same_type(operand, BOOLEAN):
                    raise TypeError_("! needs boolean", expr.line,
                                     expr.column)
                return BOOLEAN
            if expr.op == "-":
                if not same_type(operand, INT):
                    raise TypeError_("- needs int", expr.line, expr.column)
                return INT
            raise AssertionError(expr.op)
        if isinstance(expr, ast.Binary):
            return self._infer_binary(expr)
        if isinstance(expr, ast.Ternary):
            self._check_condition(expr.condition)
            then_type = self._check_expr(expr.when_true)
            else_type = self._check_expr(expr.when_false)
            if self.assignable(then_type, else_type):
                return then_type
            if self.assignable(else_type, then_type):
                return else_type
            raise TypeError_(
                f"incompatible ternary arms: {then_type} vs {else_type}",
                expr.line, expr.column)
        if isinstance(expr, ast.InstanceOf):
            operand = self._check_expr(expr.operand)
            if not (is_reference(operand) or operand.name == "null"):
                raise TypeError_("instanceof needs a reference", expr.line,
                                 expr.column)
            if expr.class_name not in self.classes:
                raise TypeError_(f"unknown class {expr.class_name}",
                                 expr.line, expr.column)
            return BOOLEAN
        if isinstance(expr, ast.Cast):
            operand = self._check_expr(expr.operand)
            if not (is_reference(operand) or operand.name == "null"):
                raise TypeError_("cast needs a reference", expr.line,
                                 expr.column)
            if expr.class_name not in self.classes:
                raise TypeError_(f"unknown class {expr.class_name}",
                                 expr.line, expr.column)
            return ast.TypeRef(name=expr.class_name)
        if isinstance(expr, ast.NewObject):
            return self._infer_new_object(expr)
        if isinstance(expr, ast.NewArray):
            self._check_type(expr.elem_type, expr)
            if expr.elem_type.is_array:
                raise TypeError_("no multi-dimensional arrays", expr.line,
                                 expr.column)
            length_type = self._check_expr(expr.length)
            if not same_type(length_type, INT):
                raise TypeError_("array length must be int", expr.line,
                                 expr.column)
            return ast.TypeRef(name=expr.elem_type.name, is_array=True)
        if isinstance(expr, ast.Call):
            return self._infer_call(expr)
        raise AssertionError(f"unhandled expression {expr!r}")

    def _infer_var(self, expr: ast.VarRef, as_target: bool) -> ast.TypeRef:
        local = self._lookup_local(expr.name)
        if local is not None:
            expr.resolution = "local"
            return local
        # Implicit this.field or static field of the enclosing class.
        fsig = self.resolve_field(self._current_class.name, expr.name)
        if fsig is not None:
            if fsig.is_static:
                expr.resolution = "static"
            else:
                if self._current_method.is_static:
                    raise TypeError_(
                        f"instance field {expr.name} in static context",
                        expr.line, expr.column)
                expr.resolution = "field"
            expr.declaring_class = fsig.declaring_class
            return fsig.type
        raise TypeError_(f"unknown variable {expr.name}", expr.line,
                         expr.column)

    def _infer_field_access(self, expr: ast.FieldAccess,
                            as_target: bool) -> ast.TypeRef:
        # Class-name receiver => static field.
        if (isinstance(expr.receiver, ast.VarRef)
                and self._lookup_local(expr.receiver.name) is None
                and expr.receiver.name in self.classes):
            class_name = expr.receiver.name
            fsig = self.resolve_field(class_name, expr.name)
            if fsig is None or not fsig.is_static:
                raise TypeError_(
                    f"unknown static field {class_name}.{expr.name}",
                    expr.line, expr.column)
            expr.resolution = "static"
            expr.declaring_class = fsig.declaring_class
            return fsig.type
        receiver_type = self._check_expr(expr.receiver)
        if receiver_type.is_array:
            if expr.name == "length":
                if as_target:
                    raise TypeError_("cannot assign to array length",
                                     expr.line, expr.column)
                expr.resolution = "arraylength"
                return INT
            raise TypeError_(f"arrays have no field {expr.name}",
                             expr.line, expr.column)
        if not is_reference(receiver_type):
            raise TypeError_(f"field access on {receiver_type}",
                             expr.line, expr.column)
        fsig = self.resolve_field(receiver_type.name, expr.name)
        if fsig is None:
            raise TypeError_(
                f"unknown field {receiver_type.name}.{expr.name}",
                expr.line, expr.column)
        expr.resolution = "static" if fsig.is_static else "instance"
        expr.declaring_class = fsig.declaring_class
        return fsig.type

    def _infer_binary(self, expr: ast.Binary) -> ast.TypeRef:
        left = self._check_expr(expr.left)
        right = self._check_expr(expr.right)
        op = expr.op
        if op in _LOGICAL_OPS:
            if not (same_type(left, BOOLEAN) and same_type(right, BOOLEAN)):
                raise TypeError_(f"{op} needs booleans", expr.line,
                                 expr.column)
            return BOOLEAN
        if op in _EQUALITY_OPS:
            if same_type(left, INT) and same_type(right, INT):
                return BOOLEAN
            if same_type(left, BOOLEAN) and same_type(right, BOOLEAN):
                return BOOLEAN
            left_ref = is_reference(left) or left.name == "null"
            right_ref = is_reference(right) or right.name == "null"
            if left_ref and right_ref:
                return BOOLEAN
            raise TypeError_(f"cannot compare {left} and {right}",
                             expr.line, expr.column)
        if op in _COMPARE_OPS:
            if not (same_type(left, INT) and same_type(right, INT)):
                raise TypeError_(f"{op} needs ints", expr.line, expr.column)
            return BOOLEAN
        if op in _ARITH_OPS:
            if not (same_type(left, INT) and same_type(right, INT)):
                raise TypeError_(f"{op} needs ints", expr.line, expr.column)
            return INT
        raise AssertionError(op)

    def _infer_new_object(self, expr: ast.NewObject) -> ast.TypeRef:
        if expr.class_name not in self.classes:
            raise TypeError_(f"unknown class {expr.class_name}", expr.line,
                             expr.column)
        ctor = self.resolve_method(expr.class_name, "<init>")
        declared_here = (ctor is not None
                         and ctor.declaring_class == expr.class_name)
        if not declared_here:
            if expr.args:
                raise TypeError_(
                    f"{expr.class_name} has no constructor taking "
                    f"{len(expr.args)} arguments", expr.line, expr.column)
        else:
            self._check_args(expr, ctor.param_types, expr.args)
        return ast.TypeRef(name=expr.class_name)

    def _check_args(self, node: ast.Node, expected: List[ast.TypeRef],
                    args: List[ast.Expr]) -> None:
        if len(expected) != len(args):
            raise TypeError_(
                f"expected {len(expected)} arguments, got {len(args)}",
                node.line, node.column)
        for expected_type, arg in zip(expected, args):
            actual = self._check_expr(arg)
            if not self.assignable(expected_type, actual):
                raise TypeError_(
                    f"argument type {actual} not assignable to "
                    f"{expected_type}", arg.line, arg.column)

    def _infer_call(self, expr: ast.Call) -> ast.TypeRef:
        receiver = expr.receiver
        if receiver is None:
            sig = self.resolve_method(self._current_class.name,
                                      expr.method_name)
            if sig is None:
                raise TypeError_(f"unknown method {expr.method_name}",
                                 expr.line, expr.column)
            if not sig.is_static and self._current_method.is_static:
                raise TypeError_(
                    f"instance method {expr.method_name} called from "
                    "static context", expr.line, expr.column)
            expr.is_static_receiver = sig.is_static
            expr.declaring_class = sig.declaring_class
            self._check_args(expr, sig.param_types, expr.args)
            return sig.return_type
        if (isinstance(receiver, ast.VarRef)
                and self._lookup_local(receiver.name) is None
                and receiver.name in self.classes):
            sig = self.resolve_method(receiver.name, expr.method_name)
            if sig is None or not sig.is_static:
                raise TypeError_(
                    f"unknown static method "
                    f"{receiver.name}.{expr.method_name}",
                    expr.line, expr.column)
            expr.is_static_receiver = True
            expr.declaring_class = sig.declaring_class
            self._check_args(expr, sig.param_types, expr.args)
            return sig.return_type
        receiver_type = self._check_expr(receiver)
        if not is_reference(receiver_type) or receiver_type.is_array:
            raise TypeError_(f"method call on {receiver_type}", expr.line,
                             expr.column)
        sig = self.resolve_method(receiver_type.name, expr.method_name)
        if sig is None:
            raise TypeError_(
                f"unknown method {receiver_type.name}.{expr.method_name}",
                expr.line, expr.column)
        if sig.is_static:
            raise TypeError_(
                f"static method {sig.qualified} called on instance",
                expr.line, expr.column)
        expr.is_static_receiver = False
        expr.declaring_class = sig.declaring_class
        self._check_args(expr, sig.param_types, expr.args)
        return sig.return_type


def typecheck(unit: ast.CompilationUnit) -> TypeChecker:
    """Check *unit*; returns the checker (which holds the class table)."""
    checker = TypeChecker(unit)
    checker.check()
    return checker
