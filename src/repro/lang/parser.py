"""Recursive-descent parser for the source language."""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as ast
from .errors import ParseError
from .lexer import Token, TokenKind, tokenize

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7, "instanceof": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_EXPR_START_PUNCT = ("(", "!", "-")


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def check(self, text: str) -> bool:
        return self.current.text == text and self.current.kind in (
            TokenKind.PUNCT, TokenKind.KEYWORD)

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            raise ParseError(
                f"expected {text!r}, found {self.current.text!r}",
                self.current.line, self.current.column)
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected identifier, found {self.current.text!r}",
                self.current.line, self.current.column)
        return self.advance()

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.current.line, self.current.column)

    # -- entry point ----------------------------------------------------------

    def parse_unit(self) -> ast.CompilationUnit:
        unit = ast.CompilationUnit(self.current.line, self.current.column)
        while self.current.kind is not TokenKind.EOF:
            unit.classes.append(self.parse_class())
        return unit

    # -- declarations ------------------------------------------------------------

    def parse_class(self) -> ast.ClassDecl:
        start = self.expect("class")
        name = self.expect_ident().text
        decl = ast.ClassDecl(start.line, start.column, name=name)
        if self.accept("extends"):
            decl.superclass = self.expect_ident().text
        self.expect("{")
        while not self.accept("}"):
            self.parse_member(decl)
        return decl

    def parse_member(self, decl: ast.ClassDecl) -> None:
        start = self.current
        is_static = False
        is_synchronized = False
        is_native = False
        while True:
            if self.accept("static"):
                is_static = True
            elif self.accept("synchronized"):
                is_synchronized = True
            elif self.accept("native"):
                is_native = True
            else:
                break

        # Constructor: ClassName '(' ...
        if (self.current.kind is TokenKind.IDENT
                and self.current.text == decl.name
                and self.peek(1).text == "("):
            name = self.advance().text
            method = ast.MethodDecl(
                start.line, start.column, name="<init>",
                return_type=ast.TypeRef(name="void"),
                is_synchronized=is_synchronized, is_constructor=True)
            if is_static or is_native:
                raise self.error("constructors cannot be static/native")
            self._parse_method_rest(method)
            decl.methods.append(method)
            return

        member_type = self.parse_type()
        name = self.expect_ident().text
        if self.check("("):
            method = ast.MethodDecl(
                start.line, start.column, name=name,
                return_type=member_type, is_static=is_static,
                is_synchronized=is_synchronized, is_native=is_native)
            self._parse_method_rest(method)
            decl.methods.append(method)
        else:
            if is_synchronized or is_native:
                raise self.error("fields cannot be synchronized/native")
            self.expect(";")
            decl.fields.append(ast.FieldDecl(
                start.line, start.column, decl_type=member_type,
                name=name, is_static=is_static))

    def _parse_method_rest(self, method: ast.MethodDecl) -> None:
        self.expect("(")
        if not self.check(")"):
            while True:
                param_type = self.parse_type()
                param_name = self.expect_ident().text
                method.params.append(ast.Param(
                    self.current.line, self.current.column,
                    decl_type=param_type, name=param_name))
                if not self.accept(","):
                    break
        self.expect(")")
        if method.is_native:
            self.expect(";")
        else:
            method.body = self.parse_block()

    def parse_type(self) -> ast.TypeRef:
        token = self.current
        if token.text in ("int", "boolean", "void"):
            self.advance()
            name = token.text
        elif token.kind is TokenKind.IDENT:
            self.advance()
            name = token.text
        else:
            raise self.error(f"expected a type, found {token.text!r}")
        type_ref = ast.TypeRef(token.line, token.column, name=name)
        if self.check("[") and self.peek(1).text == "]":
            self.advance()
            self.advance()
            type_ref.is_array = True
        return type_ref

    # -- statements -----------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self.expect("{")
        block = ast.Block(start.line, start.column)
        while not self.accept("}"):
            block.statements.append(self.parse_statement())
        return block

    def parse_statement(self) -> ast.Stmt:
        token = self.current
        if self.check("{"):
            return self.parse_block()
        if self.accept("if"):
            self.expect("(")
            condition = self.parse_expression()
            self.expect(")")
            then_branch = self.parse_statement()
            else_branch = None
            if self.accept("else"):
                else_branch = self.parse_statement()
            return ast.If(token.line, token.column, condition=condition,
                          then_branch=then_branch,
                          else_branch=else_branch)
        if self.accept("while"):
            self.expect("(")
            condition = self.parse_expression()
            self.expect(")")
            body = self.parse_statement()
            return ast.While(token.line, token.column, condition=condition,
                             body=body)
        if self.accept("for"):
            self.expect("(")
            init = None if self.check(";") else self.parse_simple_statement()
            self.expect(";")
            condition = None if self.check(";") else self.parse_expression()
            self.expect(";")
            update = None if self.check(")") else \
                self.parse_simple_statement()
            self.expect(")")
            body = self.parse_statement()
            return ast.For(token.line, token.column, init=init,
                           condition=condition, update=update, body=body)
        if self.accept("return"):
            value = None if self.check(";") else self.parse_expression()
            self.expect(";")
            return ast.Return(token.line, token.column, value=value)
        if self.accept("break"):
            self.expect(";")
            return ast.Break(token.line, token.column)
        if self.accept("continue"):
            self.expect(";")
            return ast.Continue(token.line, token.column)
        if self.accept("throw"):
            value = self.parse_expression()
            self.expect(";")
            return ast.Throw(token.line, token.column, value=value)
        if self.accept("synchronized"):
            self.expect("(")
            monitor = self.parse_expression()
            self.expect(")")
            body = self.parse_block()
            return ast.Synchronized(token.line, token.column,
                                    monitor=monitor, body=body)
        statement = self.parse_simple_statement()
        self.expect(";")
        return statement

    def parse_simple_statement(self) -> ast.Stmt:
        """A declaration, assignment or expression (no trailing ';')."""
        token = self.current
        if self._looks_like_declaration():
            decl_type = self.parse_type()
            name = self.expect_ident().text
            init = None
            if self.accept("="):
                init = self.parse_expression()
            return ast.LocalDecl(token.line, token.column,
                                 decl_type=decl_type, name=name, init=init)
        expr = self.parse_expression()
        if self.accept("="):
            if not isinstance(expr, (ast.VarRef, ast.FieldAccess,
                                     ast.ArrayIndex)):
                raise self.error("invalid assignment target")
            value = self.parse_expression()
            return ast.Assign(token.line, token.column, target=expr,
                              value=value)
        return ast.ExprStmt(token.line, token.column, expr=expr)

    def _looks_like_declaration(self) -> bool:
        token = self.current
        if token.text in ("int", "boolean"):
            return True
        if token.kind is not TokenKind.IDENT:
            return False
        # "C x", "C x = ...", "C[] x"
        if self.peek(1).kind is TokenKind.IDENT:
            return True
        return (self.peek(1).text == "[" and self.peek(2).text == "]"
                and self.peek(3).kind is TokenKind.IDENT)

    # -- expressions ---------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        condition = self.parse_binary(1)
        if not self.accept("?"):
            return condition
        token = self.current
        when_true = self.parse_expression()
        self.expect(":")
        when_false = self.parse_expression()
        return ast.Ternary(token.line, token.column, condition=condition,
                           when_true=when_true, when_false=when_false)

    def parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self.parse_unary()
        while True:
            op = self.current.text
            precedence = _PRECEDENCE.get(op)
            if precedence is None or precedence < min_precedence:
                return left
            token = self.advance()
            if op == "instanceof":
                class_name = self.expect_ident().text
                left = ast.InstanceOf(token.line, token.column,
                                      operand=left, class_name=class_name)
                continue
            right = self.parse_binary(precedence + 1)
            left = ast.Binary(token.line, token.column, op=op, left=left,
                              right=right)

    def parse_unary(self) -> ast.Expr:
        token = self.current
        if self.accept("!"):
            return ast.Unary(token.line, token.column, op="!",
                             operand=self.parse_unary())
        if self.accept("-"):
            operand = self.parse_unary()
            if isinstance(operand, ast.IntLiteral):
                operand.value = -operand.value
                return operand
            return ast.Unary(token.line, token.column, op="-",
                             operand=operand)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.current
            if self.accept("."):
                name = self.expect_ident().text
                if self.check("("):
                    args = self.parse_args()
                    expr = ast.Call(token.line, token.column, receiver=expr,
                                    method_name=name, args=args)
                else:
                    expr = ast.FieldAccess(token.line, token.column,
                                           receiver=expr, name=name)
            elif self.check("[") and self.peek(1).text != "]":
                self.advance()
                index = self.parse_expression()
                self.expect("]")
                expr = ast.ArrayIndex(token.line, token.column, array=expr,
                                      index=index)
            else:
                return expr

    def parse_args(self) -> List[ast.Expr]:
        self.expect("(")
        args: List[ast.Expr] = []
        if not self.check(")"):
            while True:
                args.append(self.parse_expression())
                if not self.accept(","):
                    break
        self.expect(")")
        return args

    def parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokenKind.INT:
            self.advance()
            return ast.IntLiteral(token.line, token.column,
                                  value=int(token.text))
        if token.kind is TokenKind.STRING:
            self.advance()
            return ast.StringLiteral(token.line, token.column,
                                     value=token.text)
        if self.accept("true"):
            return ast.BoolLiteral(token.line, token.column, value=True)
        if self.accept("false"):
            return ast.BoolLiteral(token.line, token.column, value=False)
        if self.accept("null"):
            return ast.NullLiteral(token.line, token.column)
        if self.accept("this"):
            return ast.ThisRef(token.line, token.column)
        if self.accept("new"):
            type_token = self.current
            if type_token.text in ("int", "boolean"):
                self.advance()
                elem = ast.TypeRef(type_token.line, type_token.column,
                                   name=type_token.text)
                self.expect("[")
                length = self.parse_expression()
                self.expect("]")
                return ast.NewArray(token.line, token.column,
                                    elem_type=elem, length=length)
            class_name = self.expect_ident().text
            if self.check("["):
                self.advance()
                length = self.parse_expression()
                self.expect("]")
                elem = ast.TypeRef(type_token.line, type_token.column,
                                   name=class_name)
                return ast.NewArray(token.line, token.column,
                                    elem_type=elem, length=length)
            args = self.parse_args()
            return ast.NewObject(token.line, token.column,
                                 class_name=class_name, args=args)
        if self.check("("):
            if self._looks_like_cast():
                self.advance()
                class_name = self.expect_ident().text
                self.expect(")")
                operand = self.parse_unary()
                return ast.Cast(token.line, token.column,
                                class_name=class_name, operand=operand)
            self.advance()
            expr = self.parse_expression()
            self.expect(")")
            return expr
        if token.kind is TokenKind.IDENT:
            self.advance()
            if self.check("("):
                args = self.parse_args()
                return ast.Call(token.line, token.column, receiver=None,
                                method_name=token.text, args=args)
            return ast.VarRef(token.line, token.column, name=token.text)
        raise self.error(f"unexpected token {token.text!r}")

    def _looks_like_cast(self) -> bool:
        """``( Ident )`` followed by something that starts an expression."""
        if self.peek(1).kind is not TokenKind.IDENT:
            return False
        if self.peek(2).text != ")":
            return False
        after = self.peek(3)
        if after.kind in (TokenKind.IDENT, TokenKind.INT, TokenKind.STRING):
            return True
        if after.kind is TokenKind.KEYWORD and after.text in (
                "this", "new", "null", "true", "false"):
            return True
        return after.text in ("(", "!")


def parse(source: str) -> ast.CompilationUnit:
    """Parse *source* into a compilation unit."""
    return Parser(tokenize(source)).parse_unit()
