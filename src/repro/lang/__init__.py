"""A compact Java-like source language ("MJ") compiled to the bytecode
substrate.  Used to author examples, tests and all benchmark workloads.
"""

from . import ast_nodes
from .compiler import compile_source
from .errors import LexError, ParseError, SourceError, TypeError_
from .lexer import Token, TokenKind, tokenize
from .parser import parse
from .typechecker import TypeChecker, typecheck

__all__ = [
    "ast_nodes", "compile_source", "LexError", "ParseError", "SourceError",
    "TypeError_", "Token", "TokenKind", "tokenize", "parse", "TypeChecker",
    "typecheck",
]
