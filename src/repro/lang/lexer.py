"""Lexer for the Java-like source language.

The language is a compact Java subset ("MJ"): classes with single
inheritance, int/boolean/reference types, one-dimensional arrays,
``synchronized`` methods and blocks, and the usual expression grammar.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from .errors import LexError

KEYWORDS = frozenset({
    "class", "extends", "static", "synchronized", "native", "new", "return",
    "if", "else", "while", "for", "int", "boolean", "void", "true", "false",
    "null", "this", "instanceof", "break", "continue", "throw",
})


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    STRING = "string"
    PUNCT = "punct"
    EOF = "eof"


PUNCTUATION = (
    # Longest first so maximal munch works.
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "(", ")", "{", "}", "[", "]", ";", ",", ".",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
    "?", ":",
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __str__(self):
        return f"{self.kind.value}({self.text!r})@{self.line}:{self.column}"


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*, returning tokens ending with an EOF token."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    length = len(source)

    def column():
        return pos - line_start + 1

    while pos < length:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end == -1 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end == -1:
                raise LexError("unterminated block comment", line, column())
            line += source.count("\n", pos, end)
            if "\n" in source[pos:end]:
                line_start = pos + source[pos:end].rindex("\n") + 1
            pos = end + 2
            continue
        if ch.isdigit():
            start = pos
            while pos < length and source[pos].isdigit():
                pos += 1
            tokens.append(Token(TokenKind.INT, source[start:pos], line,
                                start - line_start + 1))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (source[pos].isalnum()
                                    or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = (TokenKind.KEYWORD if text in KEYWORDS
                    else TokenKind.IDENT)
            tokens.append(Token(kind, text, line, start - line_start + 1))
            continue
        if ch == '"':
            start = pos
            pos += 1
            chars: List[str] = []
            while pos < length and source[pos] != '"':
                if source[pos] == "\n":
                    raise LexError("unterminated string literal", line,
                                   start - line_start + 1)
                if source[pos] == "\\":
                    pos += 1
                    if pos >= length:
                        raise LexError("bad escape", line, column())
                    escape = source[pos]
                    chars.append({"n": "\n", "t": "\t", '"': '"',
                                  "\\": "\\"}.get(escape, escape))
                else:
                    chars.append(source[pos])
                pos += 1
            if pos >= length:
                raise LexError("unterminated string literal", line,
                               start - line_start + 1)
            pos += 1  # closing quote
            tokens.append(Token(TokenKind.STRING, "".join(chars), line,
                                start - line_start + 1))
            continue
        for punct in PUNCTUATION:
            if source.startswith(punct, pos):
                tokens.append(Token(TokenKind.PUNCT, punct, line, column()))
                pos += len(punct)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, column())

    tokens.append(Token(TokenKind.EOF, "", line, column()))
    return tokens
