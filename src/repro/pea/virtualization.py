"""Per-node effects on the allocation state (the paper's Section 5.2).

The :class:`PEATool` plays the role of Graal's ``VirtualizerTool``: it
dispatches each fixed node against the current :class:`PEAState`,
implementing the patterns of Figure 4 (allocation, store/load on virtual
objects, monitor enter/exit, virtual-into-virtual stores), Figure 5
(operations on escaped objects), the compile-time folding of reference
equality / null / type checks on virtual objects, and the frame-state
rewriting of Section 5.5 (Figure 8).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..analysis.diagnostics import MaterializationEvent
from ..bytecode.classfile import Program
from ..bytecode.disassembler import format_position
from ..ir.node import Node
from ..ir.nodes import (ArrayLengthNode, ConstantNode, DeoptimizeNode,
                        EndNode, EscapeObjectStateNode, FixedGuardNode,
                        FrameStateNode, InstanceOfNode, InvokeNode,
                        IsNullNode, LoadFieldNode, LoadIndexedNode,
                        LoopEndNode, MonitorEnterNode, MonitorExitNode,
                        NewArrayNode, NewInstanceNode, RefEqualsNode,
                        ReturnNode, StoreFieldNode, StoreIndexedNode,
                        StoreStaticNode, VirtualArrayNode,
                        VirtualInstanceNode, VirtualObjectNode)
from .effects import Effects
from .materialize import borrow_materialized, ensure_materialized
from .state import ObjectState, PEAState

#: Arrays longer than this are not virtualized (entry lists must stay
#: manageable; Graal uses a similar limit).
MAX_VIRTUAL_ARRAY_LENGTH = 64


class PEAError(Exception):
    pass


class PEATool:
    """Shared context for one Partial Escape Analysis pass."""

    def __init__(self, program: Program, effects: Effects):
        self.program = program
        self.effects = effects
        self.graph = effects.graph
        #: If set, only these allocations may be virtualized (used by the
        #: flow-insensitive baseline to restrict PEA's machinery).
        self.allowed_allocations: Optional[Set[Node]] = None
        #: Ablation knobs (Section 5.2 features).
        self.virtualize_arrays = True
        self.fold_virtual_checks = True
        #: Interprocedural escape summaries
        #: (:class:`repro.analysis.summaries.SummaryView`), if the
        #: configuration enables them: virtual objects passed to
        #: summarized non-escaping callees are not materialized.
        self.summaries = None
        #: Scalar replacements: deleted node -> replacement value node.
        self.replacements: Dict[Node, Node] = {}
        #: Nodes scheduled for deletion during this pass.
        self.deleted: Set[Node] = set()
        #: Statistics for tests/diagnostics.
        self.virtualized_allocations = 0
        self.removed_monitor_pairs = 0
        self.materializations = 0
        #: Escape-site attribution (plain data; snapshot/rolled back
        #: with the loop-retry machinery, so the final list is exact).
        self.events: List[MaterializationEvent] = []

    # -- helpers ------------------------------------------------------------

    def resolve(self, node: Optional[Node]) -> Optional[Node]:
        while node in self.replacements:
            node = self.replacements[node]
        return node

    def _replace_with_value(self, node, value: Node):
        """Scalar-replace *node* (a fixed value node) by *value*."""
        self.replacements[node] = value
        self.effects.replace_at_usages(node, value)
        self._delete(node)

    def _delete(self, node):
        self.deleted.add(node)
        self.effects.delete_fixed(node)

    def materialize(self, state: PEAState,
                    virtual_object: VirtualObjectNode,
                    anchor: Node) -> Node:
        self.materializations += 1
        self._record_event(state, virtual_object, anchor,
                           "materialized")
        return ensure_materialized(self.program, state, virtual_object,
                                   anchor, self.effects)

    # -- escape-site attribution -------------------------------------------

    def _record_event(self, state: PEAState,
                      virtual_object: VirtualObjectNode, anchor: Node,
                      kind: str):
        method = self.graph.method
        self.events.append(MaterializationEvent(
            method=method.qualified_name if method else "?",
            object_desc=self._describe_object(virtual_object),
            object_position=self._object_position(virtual_object),
            reason=self._describe_anchor(anchor, virtual_object, state),
            kind=kind))

    @staticmethod
    def _describe_object(virtual_object: VirtualObjectNode) -> str:
        if isinstance(virtual_object, VirtualInstanceNode):
            return virtual_object.class_name
        return (f"{virtual_object.elem_type}"
                f"[{virtual_object.length}]")

    @staticmethod
    def _object_position(virtual_object: VirtualObjectNode
                         ) -> Optional[str]:
        position = getattr(virtual_object, "position", None)
        return format_position(position) if position else None

    def _describe_anchor(self, anchor: Node,
                         virtual_object: VirtualObjectNode,
                         state: PEAState) -> str:
        suffix = ""
        position = getattr(anchor, "position", None)
        if position:
            suffix = f" at {format_position(position)}"
        if isinstance(anchor, InvokeNode):
            target = anchor.target
            params = [i for i, arg in enumerate(anchor.arguments)
                      if state.get_alias(self.resolve(arg))
                      is virtual_object]
            where = f" param {params[0]}" if params else ""
            return (f"flows into {target.class_name}."
                    f"{target.method_name}{where}{suffix}")
        if isinstance(anchor, StoreStaticNode):
            return f"is stored into static {anchor.field}{suffix}"
        if isinstance(anchor, (StoreFieldNode, StoreIndexedNode)):
            container = "an escaped object" \
                if isinstance(anchor, StoreFieldNode) \
                else "an escaped array"
            return f"is stored into {container}{suffix}"
        if isinstance(anchor, ReturnNode):
            return f"is returned{suffix}"
        if isinstance(anchor, LoopEndNode):
            return f"crosses a loop back edge non-virtually{suffix}"
        if isinstance(anchor, EndNode):
            from ..ir.nodes import LoopBeginNode
            if isinstance(anchor.merge(), LoopBeginNode):
                return f"cannot stay virtual across a loop{suffix}"
            return f"merges with a non-virtual path{suffix}"
        return f"reaches {type(anchor).__name__}{suffix}"

    # -- main dispatch -------------------------------------------------------

    def process_node(self, node: Node, state: PEAState):
        """Apply *node*'s effect to *state*, recording graph effects."""
        if isinstance(node, NewInstanceNode):
            self._virtualize_new_instance(node, state)
        elif isinstance(node, NewArrayNode):
            self._virtualize_new_array(node, state)
        elif isinstance(node, LoadFieldNode):
            self._load_field(node, state)
        elif isinstance(node, StoreFieldNode):
            self._store_field(node, state)
        elif isinstance(node, LoadIndexedNode):
            self._load_indexed(node, state)
        elif isinstance(node, StoreIndexedNode):
            self._store_indexed(node, state)
        elif isinstance(node, ArrayLengthNode):
            self._array_length(node, state)
        elif isinstance(node, MonitorEnterNode):
            self._monitor(node, state, delta=+1)
        elif isinstance(node, MonitorExitNode):
            self._monitor(node, state, delta=-1)
        elif isinstance(node, RefEqualsNode):
            self._ref_equals(node, state)
        elif isinstance(node, IsNullNode):
            self._is_null(node, state)
        elif isinstance(node, InstanceOfNode):
            self._instance_of(node, state)
        elif isinstance(node, InvokeNode):
            self._invoke(node, state)
        else:
            self.process_generic(node, state)
        if node not in self.deleted:
            self._process_attached_states(node, state)

    # -- Figure 4 (a): new allocations ------------------------------------------

    def _virtualize_new_instance(self, node: NewInstanceNode,
                                 state: PEAState):
        if self.allowed_allocations is not None and \
                node not in self.allowed_allocations:
            self.process_generic(node, state)
            return
        fields = self.program.instance_fields(node.class_name)
        virtual = VirtualInstanceNode(node.class_name,
                                      [f.name for f in fields])
        virtual.position = getattr(node, "position", None)
        self.effects.track_created(virtual)
        entries: List[Node] = [
            self.graph.constant(f.default_value()) for f in fields]
        state.add_object(ObjectState(virtual, entries))
        state.add_alias(node, virtual)
        self.virtualized_allocations += 1
        self._delete(node)

    def _virtualize_new_array(self, node: NewArrayNode, state: PEAState):
        if not self.virtualize_arrays or (
                self.allowed_allocations is not None
                and node not in self.allowed_allocations):
            self.process_generic(node, state)
            return
        length = self.resolve(node.length)
        if not (isinstance(length, ConstantNode)
                and isinstance(length.value, int)
                and 0 <= length.value <= MAX_VIRTUAL_ARRAY_LENGTH):
            self.process_generic(node, state)
            return
        default = self.graph.constant(
            0 if node.elem_type in ("int", "boolean") else None)
        virtual = VirtualArrayNode(node.elem_type, length.value)
        virtual.position = getattr(node, "position", None)
        self.effects.track_created(virtual)
        state.add_object(ObjectState(virtual, [default] * length.value))
        state.add_alias(node, virtual)
        self.virtualized_allocations += 1
        self._delete(node)

    # -- Figure 4 (b,e,f) and Figure 5: field accesses ----------------------------

    def _load_field(self, node: LoadFieldNode, state: PEAState):
        obj = self.resolve(node.object)
        alias = state.get_alias(obj)
        obj_state = state.object_states.get(alias) if alias else None
        if obj_state is None or not obj_state.is_virtual:
            self.process_generic(node, state)
            return
        virtual = obj_state.virtual_object
        assert isinstance(virtual, VirtualInstanceNode)
        index = virtual.field_index(node.field.field_name)
        entry = obj_state.entries[index]
        if isinstance(entry, VirtualObjectNode):
            # Figure 4 (f): the loaded value is itself a virtual object.
            state.add_alias(node, entry)
            self._delete(node)
        else:
            # Figure 4 (b): replace the load with the known value.
            self._replace_with_value(node, entry)

    def _store_field(self, node: StoreFieldNode, state: PEAState):
        obj = self.resolve(node.object)
        alias = state.get_alias(obj)
        obj_state = state.object_states.get(alias) if alias else None
        if obj_state is None or not obj_state.is_virtual:
            # Figure 5: store on an escaped/untracked object stays; its
            # inputs (incl. a virtual value, which escapes) are handled
            # generically.
            self.process_generic(node, state)
            return
        virtual = obj_state.virtual_object
        assert isinstance(virtual, VirtualInstanceNode)
        index = virtual.field_index(node.field.field_name)
        value = self.resolve(node.value)
        value_alias = state.get_alias(value)
        # Figure 4 (e): a stored virtual object is recorded by Id.
        obj_state.entries[index] = (value_alias if value_alias is not None
                                    else value)
        self._delete(node)

    def _load_indexed(self, node: LoadIndexedNode, state: PEAState):
        array = self.resolve(node.array)
        alias = state.get_alias(array)
        obj_state = state.object_states.get(alias) if alias else None
        index = self.resolve(node.index)
        if (obj_state is None or not obj_state.is_virtual
                or not isinstance(index, ConstantNode)
                or not 0 <= index.value < len(obj_state.entries)):
            self.process_generic(node, state)
            return
        entry = obj_state.entries[index.value]
        if isinstance(entry, VirtualObjectNode):
            state.add_alias(node, entry)
            self._delete(node)
        else:
            self._replace_with_value(node, entry)

    def _store_indexed(self, node: StoreIndexedNode, state: PEAState):
        array = self.resolve(node.array)
        alias = state.get_alias(array)
        obj_state = state.object_states.get(alias) if alias else None
        index = self.resolve(node.index)
        if (obj_state is None or not obj_state.is_virtual
                or not isinstance(index, ConstantNode)
                or not 0 <= index.value < len(obj_state.entries)):
            self.process_generic(node, state)
            return
        value = self.resolve(node.value)
        value_alias = state.get_alias(value)
        obj_state.entries[index.value] = (
            value_alias if value_alias is not None else value)
        self._delete(node)

    def _array_length(self, node: ArrayLengthNode, state: PEAState):
        array = self.resolve(node.array)
        alias = state.get_alias(array)
        obj_state = state.object_states.get(alias) if alias else None
        if obj_state is None or not obj_state.is_virtual:
            self.process_generic(node, state)
            return
        assert isinstance(alias, VirtualArrayNode)
        self._replace_with_value(node, self.graph.constant(alias.length))

    # -- Figure 4 (c,d): monitors ---------------------------------------------------

    def _monitor(self, node, state: PEAState, delta: int):
        obj = self.resolve(node.object)
        alias = state.get_alias(obj)
        obj_state = state.object_states.get(alias) if alias else None
        if obj_state is None or not obj_state.is_virtual:
            self.process_generic(node, state)
            return
        if delta < 0 and obj_state.lock_count <= 0:
            raise PEAError(f"unbalanced monitorexit on {alias}")
        obj_state.lock_count += delta
        if delta < 0:
            self.removed_monitor_pairs += 1
        self._delete(node)

    # -- compile-time folds on virtual objects ------------------------------------

    def _ref_equals(self, node: RefEqualsNode, state: PEAState):
        if not self.fold_virtual_checks:
            self.process_generic(node, state)
            return
        x, y = self.resolve(node.x), self.resolve(node.y)
        ax, ay = state.get_alias(x), state.get_alias(y)
        if ax is not None and ay is not None:
            # Two tracked allocations: identity is their Id equality.
            self._replace_with_value(
                node, self.graph.constant(1 if ax is ay else 0))
            return
        if ax is not None or ay is not None:
            tracked = ax if ax is not None else ay
            if state.get_state(tracked).is_virtual:
                # A virtual object is identical to nothing else.
                self._replace_with_value(node, self.graph.constant(0))
                return
        self.process_generic(node, state)

    def _is_null(self, node: IsNullNode, state: PEAState):
        if not self.fold_virtual_checks:
            self.process_generic(node, state)
            return
        value = self.resolve(node.value)
        if state.get_alias(value) is not None:
            # Tracked allocations are never null.
            self._replace_with_value(node, self.graph.constant(0))
            return
        self.process_generic(node, state)

    def _instance_of(self, node: InstanceOfNode, state: PEAState):
        if not self.fold_virtual_checks:
            self.process_generic(node, state)
            return
        value = self.resolve(node.value)
        alias = state.get_alias(value)
        if alias is None:
            self.process_generic(node, state)
            return
        # The exact type of a tracked allocation is known (Section 5.2).
        if isinstance(alias, VirtualInstanceNode):
            result = 1 if self.program.is_subclass_of(
                alias.class_name, node.class_name) else 0
        else:
            result = 1 if node.class_name == "Object" else 0
        self._replace_with_value(node, self.graph.constant(result))

    # -- invokes: consult interprocedural escape summaries ------------------------

    def _invoke(self, node: InvokeNode, state: PEAState):
        """Without summaries this is the paper's conservative rule (any
        reference argument of a non-inlined invoke escapes, handled
        generically).  With summaries, a virtual argument whose callee
        parameter is summarized non-escaping avoids heap
        materialization:

        - **unused** parameter (never a receiver): pass null — the
          callee provably cannot observe the difference;
        - **borrowable** parameter (read but never written, locked,
          returned, captured or stored anywhere): pass a throwaway
          stack-allocated copy; the caller's object stays virtual.

        Decisions are made per tracked *object*, joining the parameter
        summaries over every position the object occupies, so
        ``f(o, o)`` keeps reference identity (one shared borrow).
        """
        summaries = self.summaries
        arguments = list(node.arguments)
        if summaries is None or not arguments:
            self.process_generic(node, state)
            return
        receiver_class = None
        if node.kind == "virtual":
            receiver_alias = state.get_alias(
                self.resolve(arguments[0]))
            if isinstance(receiver_alias, VirtualInstanceNode):
                receiver_class = receiver_alias.class_name
        summary = summaries.summary_for_call(
            node.target, receiver_class=receiver_class)
        if summary is None or summary.is_top:
            self.process_generic(node, state)
            return

        # Join each tracked object's parameter summaries over all the
        # positions it occupies.
        per_object: Dict[VirtualObjectNode, object] = {}
        receivers: Set[VirtualObjectNode] = set()
        for position, argument in enumerate(arguments):
            alias = state.get_alias(self.resolve(argument))
            if alias is None:
                continue
            param = summary.param(position)
            joined = per_object.get(alias)
            per_object[alias] = param if joined is None \
                else joined.join(param)
            if position == 0 and node.kind in ("virtual", "special"):
                receivers.add(alias)

        replacement_for: Dict[VirtualObjectNode, Node] = {}
        for alias, param in per_object.items():
            obj_state = state.get_state(alias)
            if not obj_state.is_virtual:
                replacement_for[alias] = obj_state.materialized_value
                continue
            if param.classification == "unused" and \
                    alias not in receivers and \
                    obj_state.lock_count == 0:
                # The callee never touches the parameter: null it and
                # keep the object virtual.  Never for receivers — the
                # VM dispatches on them.
                replacement_for[alias] = self.graph.constant(None)
                self._record_event(state, alias, node, "nulled_arg")
                continue
            if param.borrowable and obj_state.lock_count == 0 and \
                    self._entries_borrowable(state, alias):
                replacement_for[alias] = borrow_materialized(
                    self.program, state, alias, node, self.effects)
                self._record_event(state, alias, node, "borrowed")
                continue
            replacement_for[alias] = self.materialize(state, alias,
                                                      node)
        for argument in arguments:
            alias = state.get_alias(self.resolve(argument))
            if alias is not None:
                self.effects.replace_input(node, argument,
                                           replacement_for[alias])

    def _entries_borrowable(self, state: PEAState,
                            virtual_object: VirtualObjectNode) -> bool:
        """A borrow copies the entry values verbatim: every entry must
        be a real value (a nested still-virtual object would need its
        own materialization — not worth a borrow)."""
        for entry in state.get_state(virtual_object).entries:
            if isinstance(entry, VirtualObjectNode) and \
                    state.get_state(entry).is_virtual:
                return False
        return True

    # -- the default: inputs referencing tracked objects escape --------------------

    def process_generic(self, node: Node, state: PEAState):
        """Any unhandled operation requires real object references:
        virtual inputs are materialized, escaped inputs are replaced with
        their materialized values."""
        for inp in list(node.inputs()):
            if isinstance(inp, (FrameStateNode, VirtualObjectNode)):
                continue
            value = self.resolve(inp)
            alias = state.get_alias(value)
            if alias is None:
                continue
            obj_state = state.get_state(alias)
            if obj_state.is_virtual:
                materialized = self.materialize(state, alias, node)
            else:
                materialized = obj_state.materialized_value
            self.effects.replace_input(node, inp, materialized)

    # -- Section 5.5: frame states ---------------------------------------------------

    def _process_attached_states(self, node: Node, state: PEAState):
        for slot in ("state_after", "state_before", "state"):
            if slot in node._all_input_slots():
                frame_state = getattr(node, slot)
                if frame_state is not None:
                    self.process_frame_state(node, slot, frame_state,
                                             state)

    def process_frame_state(self, site: Node, slot: str,
                            frame_state: FrameStateNode, state: PEAState):
        """Rewrite *site*'s frame state so deoptimization can
        rematerialize scalar-replaced objects (Figure 8).

        The chain is duplicated copy-on-write (outer states are shared
        between sites, but the virtual-object snapshots are per-site).
        """
        chain = list(frame_state.outer_chain())
        if not any(self._needs_rewrite(fs, state) for fs in chain):
            return
        needed: Set[VirtualObjectNode] = set()
        new_outer: Optional[FrameStateNode] = None
        new_chain: List[FrameStateNode] = []
        for original in reversed(chain):  # outermost first
            duplicate = FrameStateNode(original.method, original.bci)
            self.effects.track_created(duplicate)
            duplicate.outer = new_outer
            for list_name in ("locals_values", "stack_values", "locks"):
                for value in original.input_list(list_name):
                    duplicate.input_list(list_name).append(
                        self._state_value(value, state, needed))
            # Snapshots created by an earlier PEA round must survive
            # the rewrite: the states still reference their virtual
            # objects, and dropping the mappings would make those
            # objects unmaterializable at deopt.
            for mapping in original.virtual_mappings:
                if mapping is not None:
                    duplicate.virtual_mappings.append(
                        self._carry_mapping(mapping, state, needed))
            new_outer = duplicate
            new_chain.append(duplicate)
        innermost = new_chain[-1]
        # Snapshot every needed virtual object (transitively).
        snapshotted: Set[VirtualObjectNode] = set()
        worklist = list(needed)
        while worklist:
            virtual = worklist.pop()
            if virtual in snapshotted:
                continue
            snapshotted.add(virtual)
            obj_state = state.get_state(virtual)
            mapping = EscapeObjectStateNode(
                lock_count=obj_state.lock_count, virtual_object=virtual)
            self.effects.track_created(mapping)
            for entry in obj_state.entries:
                if isinstance(entry, VirtualObjectNode):
                    entry_state = state.get_state(entry)
                    if entry_state.is_virtual:
                        mapping.entries.append(entry)
                        worklist.append(entry)
                    else:
                        mapping.entries.append(
                            entry_state.materialized_value)
                else:
                    mapping.entries.append(self.resolve(entry))
            innermost.virtual_mappings.append(mapping)
        self.effects.set_state_input(site, slot, innermost)

    def _needs_rewrite(self, frame_state: FrameStateNode,
                       state: PEAState) -> bool:
        for list_name in ("locals_values", "stack_values", "locks"):
            for value in frame_state.input_list(list_name):
                resolved = self.resolve(value)
                if resolved is not value:
                    return True
                if state.get_alias(resolved) is not None:
                    return True
        # Entries of earlier-round snapshots may reference values this
        # round is virtualizing (e.g. a materialized allocation that is
        # being re-virtualized): they need re-resolution too.
        for mapping in frame_state.virtual_mappings:
            if mapping is None:
                continue
            for entry in mapping.entries:
                if entry is None or isinstance(entry, VirtualObjectNode):
                    continue
                resolved = self.resolve(entry)
                if resolved is not entry or \
                        state.get_alias(resolved) is not None:
                    return True
        return False

    def _carry_mapping(self, mapping: EscapeObjectStateNode,
                       state: PEAState, needed: Set[VirtualObjectNode]
                       ) -> EscapeObjectStateNode:
        """Preserve an earlier round's EscapeObjectState, re-resolving
        entries through the current allocation state (an entry that now
        aliases a tracked object becomes the new virtual object — and
        forces its snapshot — or the materialized value)."""
        new_entries: List[Optional[Node]] = []
        changed = False
        for entry in mapping.entries:
            if entry is None or isinstance(entry, VirtualObjectNode):
                new_entries.append(entry)
                continue
            value = self._state_value(entry, state, needed)
            changed = changed or value is not entry
            new_entries.append(value)
        if not changed:
            return mapping
        duplicate = EscapeObjectStateNode(
            lock_count=mapping.lock_count,
            virtual_object=mapping.virtual_object)
        self.effects.track_created(duplicate)
        duplicate.entries.extend(new_entries)
        return duplicate

    def _state_value(self, value: Optional[Node], state: PEAState,
                     needed: Set[VirtualObjectNode]) -> Optional[Node]:
        if value is None:
            return None
        resolved = self.resolve(value)
        alias = state.get_alias(resolved)
        if alias is None:
            return resolved
        obj_state = state.get_state(alias)
        if obj_state.is_virtual:
            needed.add(alias)
            return alias
        return obj_state.materialized_value
