"""The MergeProcessor: combining allocation states at control-flow joins
(Section 5.3, Figure 6).

For every allocation Id surviving the alias-map intersection:

- all predecessors escaped  -> merged escaped; materialized values merge
  through a Phi if they differ (Figure 6 (b));
- mixed                      -> virtual predecessors materialize at their
  End node, then the escaped case applies;
- all virtual                -> entries merge value-wise; differing
  entries become Phis, and any virtual object feeding such a Phi is
  materialized first ("a virtual object needs to be materialized before
  it can serve as an input to a Phi node").

Existing Phis attached to the merge are examined as in Figure 6 (c): if
every input aliases the same Id the Phi itself becomes an alias of that
Id; otherwise tracked inputs are replaced by materialized values.

The whole process repeats until no further materializations happen.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..ir.node import Node
from ..ir.nodes import MergeNode, PhiNode, VirtualObjectNode
from .state import ObjectState, PEAState
from .virtualization import PEATool


class MergeProcessor:
    def __init__(self, tool: PEATool):
        self.tool = tool
        self.effects = tool.effects

    # -- entry point -------------------------------------------------------

    def merge(self, merge: MergeNode, pred_states: Sequence[PEAState],
              anchors: Sequence[Node]) -> PEAState:
        """Merge *pred_states* (ordered like *anchors*, the End nodes of
        the merge) into one consistent state."""
        # Materialization fixed point.
        while self._materialization_round(merge, pred_states, anchors):
            pass
        merged = self._build_state(merge, pred_states)
        self._process_existing_phis(merge, pred_states, merged)
        return merged

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _common_ids(pred_states: Sequence[PEAState]
                    ) -> List[VirtualObjectNode]:
        first = pred_states[0].object_states
        result = []
        for vo in first:
            if all(vo in ps.object_states for ps in pred_states[1:]):
                result.append(vo)
        return result

    def _materialization_round(self, merge, pred_states, anchors) -> bool:
        changed = False
        for vo in self._common_ids(pred_states):
            states = [ps.get_state(vo) for ps in pred_states]
            virtuals = [st.is_virtual for st in states]
            if all(virtuals):
                if len({st.lock_count for st in states}) > 1:
                    # Lock depths disagree: cannot stay virtual.
                    for ps, anchor in zip(pred_states, anchors):
                        self.tool.materialize(ps, vo, anchor)
                    changed = True
                    continue
                changed |= self._materialize_phi_inputs(
                    vo, states, pred_states, anchors)
            elif any(virtuals):
                # Mixed: materialize wherever still virtual.
                for ps, anchor, is_virtual in zip(pred_states, anchors,
                                                  virtuals):
                    if is_virtual:
                        self.tool.materialize(ps, vo, anchor)
                        changed = True
        # Existing phis may force materialization too.
        for phi in merge.phis():
            aliases = self._phi_input_aliases(phi, pred_states)
            if self._common_alias(aliases, pred_states) is not None:
                continue
            for index, alias in enumerate(aliases):
                if alias is None:
                    continue
                if pred_states[index].get_state(alias).is_virtual:
                    self.tool.materialize(pred_states[index], alias,
                                          anchors[index])
                    changed = True
        return changed

    def _materialize_phi_inputs(self, vo, states, pred_states,
                                anchors) -> bool:
        """Differing entries whose values include virtual objects force
        those (referenced) objects to materialize."""
        changed = False
        entry_count = len(states[0].entries)
        for index in range(entry_count):
            values = [st.entries[index] for st in states]
            first = values[0]
            if all(v is first for v in values):
                continue
            for pred_index, value in enumerate(values):
                if isinstance(value, VirtualObjectNode):
                    ps = pred_states[pred_index]
                    if ps.get_state(value).is_virtual:
                        self.tool.materialize(ps, value,
                                              anchors[pred_index])
                        changed = True
        return changed

    # -- merged-state construction ----------------------------------------------

    def _build_state(self, merge, pred_states) -> PEAState:
        merged = PEAState()
        for vo in self._common_ids(pred_states):
            states = [ps.get_state(vo) for ps in pred_states]
            if all(st.is_virtual for st in states):
                entries: List[Node] = []
                for index in range(len(states[0].entries)):
                    values = [st.entries[index] for st in states]
                    first = values[0]
                    if all(v is first for v in values):
                        entries.append(first)
                    else:
                        phi = PhiNode()
                        self.effects.track_created(phi)
                        inputs = [
                            self._entry_value(pred_states[i], values[i])
                            for i in range(len(values))]
                        self._register_phi(phi, merge, inputs)
                        entries.append(phi)
                merged.add_object(ObjectState(
                    vo, entries, states[0].lock_count))
            else:
                mats = [st.materialized_value for st in states]
                first = mats[0]
                if all(m is first for m in mats):
                    value: Node = first
                else:
                    phi = PhiNode()
                    self.effects.track_created(phi)
                    self._register_phi(phi, merge, mats)
                    value = phi
                merged.add_object(ObjectState(
                    vo, None, 0, materialized_value=value))
        # Alias intersection (Figure 6 (a)).
        for key, vo in pred_states[0].aliases.items():
            if vo not in merged.object_states:
                continue
            if all(ps.aliases.get(key) is vo for ps in pred_states[1:]):
                merged.add_alias(key, vo)
        return merged

    def _entry_value(self, pred_state: PEAState, value: Node) -> Node:
        """A phi input must be a runtime value: virtual references give
        way to their (already forced) materialized values."""
        if isinstance(value, VirtualObjectNode):
            return pred_state.get_state(value).materialized_value
        return value

    def _register_phi(self, phi: PhiNode, merge: MergeNode,
                      inputs: List[Node]):
        def action():
            graph = self.effects.graph
            if phi.graph is None:
                graph.add(phi)
            phi.merge = merge
            for value in inputs:
                if value is not None and value.graph is None:
                    graph.add(value)
            phi.values.set_all(inputs)
        self.effects.add(f"create merge phi at {merge!r}", action)

    # -- Figure 6 (c): existing phis ---------------------------------------------

    def _phi_input_aliases(self, phi: PhiNode, pred_states
                           ) -> List[Optional[VirtualObjectNode]]:
        aliases = []
        for index, ps in enumerate(pred_states):
            value = self.tool.resolve(phi.values[index])
            aliases.append(ps.get_alias(value))
        return aliases

    @staticmethod
    def _common_alias(aliases, pred_states):
        first = aliases[0]
        if first is None or any(a is not first for a in aliases):
            return None
        return first

    def _process_existing_phis(self, merge, pred_states,
                               merged: PEAState):
        for phi in list(merge.phis()):
            aliases = self._phi_input_aliases(phi, pred_states)
            common = self._common_alias(aliases, pred_states)
            if common is not None and common in merged.object_states:
                merged_state = merged.get_state(common)
                merged.add_alias(phi, common)
                if not merged_state.is_virtual:
                    # Keep the phi executable: route the materialized
                    # values through it.
                    inputs = [
                        pred_states[i].get_state(common)
                        .materialized_value
                        for i in range(len(aliases))]
                    self.effects.set_phi_inputs(phi, inputs)
                continue
            # Mixed/None aliases: tracked inputs must become real values
            # (their objects were materialized in the rounds above).
            new_inputs = []
            changed = False
            for index, alias in enumerate(aliases):
                value = self.tool.resolve(phi.values[index])
                if alias is not None:
                    value = pred_states[index].get_state(
                        alias).materialized_value
                if value is not phi.values[index]:
                    changed = True
                new_inputs.append(value)
            if changed:
                self.effects.set_phi_inputs(phi, new_inputs)
