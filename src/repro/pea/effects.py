"""Deferred graph-mutation effects.

Partial Escape Analysis must not mutate the graph while it is still
iterating over it — loop bodies are processed repeatedly until the state
reaches a fixed point (Section 5.4), and the effects of abandoned
iterations have to be thrown away.  So the analysis records *effects*
(closures over already-created, detached replacement nodes) and applies
them once the whole analysis has succeeded, exactly like Graal's
EffectsPhase.

``mark()``/``rollback()`` implement the loop retry: rollback truncates
the effect list and disconnects any detached nodes created since the
mark (so their input/usage bookkeeping doesn't leak into the live graph).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..ir.graph import Graph
from ..ir.node import FixedWithNextNode, Node


class Effects:
    """An ordered log of graph mutations plus deferred deletions."""

    def __init__(self, graph: Graph):
        self.graph = graph
        self._items: List[Tuple[str, Callable[[], None]]] = []
        self._deletions: List[Node] = []
        self._created: List[Node] = []

    # -- bookkeeping for loop retries ----------------------------------------

    def mark(self) -> Tuple[int, int, int]:
        return (len(self._items), len(self._deletions),
                len(self._created))

    def rollback(self, mark: Tuple[int, int, int]):
        items, deletions, created = mark
        del self._items[items:]
        del self._deletions[deletions:]
        for node in self._created[created:]:
            node.clear_inputs()
        del self._created[created:]

    def track_created(self, node: Node) -> Node:
        """Register a detached node so rollback can disconnect it."""
        self._created.append(node)
        return node

    # -- recording ---------------------------------------------------------------

    def add(self, description: str, action: Callable[[], None]):
        self._items.append((description, action))

    def delete_fixed(self, node: FixedWithNextNode):
        """Unlink *node* from control flow at apply time (the last step)."""
        self._deletions.append(node)

    def replace_at_usages(self, node: Node, replacement: Optional[Node]):
        self.add(f"replace {node!r} -> {replacement!r}",
                 lambda: node.replace_at_usages(
                     self._materialize_ref(replacement)))

    def _materialize_ref(self, replacement: Optional[Node]):
        if replacement is not None and replacement.graph is None:
            self.graph.add(replacement)
        return replacement

    def replace_input(self, user: Node, old: Node, new: Node):
        def action():
            if new.graph is None:
                self.graph.add(new)
            user.replace_input(old, new)
        self.add(f"input {old!r} -> {new!r} in {user!r}", action)

    def insert_fixed_before(self, anchor: Node,
                            node: FixedWithNextNode):
        self.add(f"insert {node!r} before {anchor!r}",
                 lambda: self.graph.insert_before(anchor, node))

    def set_state_input(self, user: Node, slot_name: str, state: Node):
        def action():
            if state.graph is None:
                self.graph.add(state)
            setattr(user, slot_name, state)
        self.add(f"state of {user!r} <- {state!r}", action)

    def set_phi_inputs(self, phi: Node, values: List[Node]):
        def action():
            if phi.graph is None:
                self.graph.add(phi)
            phi.values.set_all([self._materialize_ref(v) for v in values])
        self.add(f"phi {phi!r} inputs", action)

    # -- application ---------------------------------------------------------------

    def apply(self) -> int:
        """Apply all recorded effects; returns the number applied."""
        from ..opt.util import sweep_floating

        for description, action in self._items:
            action()
        # Orphaned frame states must release their references before the
        # deleted fixed nodes are checked for liveness.
        sweep_floating(self.graph)
        for node in self._deletions:
            if node.graph is not self.graph:
                continue  # already gone (e.g. inside a killed branch)
            self.graph.remove_fixed(node)
        sweep_floating(self.graph)
        return len(self._items) + len(self._deletions)

    def __len__(self):
        return len(self._items) + len(self._deletions)

    def descriptions(self) -> List[str]:
        return [d for d, __ in self._items] + [
            f"delete {n!r}" for n in self._deletions]
