"""Escape analyses: the paper's Partial Escape Analysis and the
flow-insensitive equi-escape-sets baseline."""

from .effects import Effects
from .equi_escape import EquiEscapePhase, EquiEscapeSets
from .materialize import ensure_materialized
from .merge import MergeProcessor
from .partial_escape import PartialEscapePhase, PEAResult
from .processor import PEAProcessor
from .state import ObjectState, PEAState
from .virtualization import MAX_VIRTUAL_ARRAY_LENGTH, PEAError, PEATool

__all__ = [
    "Effects", "EquiEscapePhase", "EquiEscapeSets", "ensure_materialized",
    "MergeProcessor", "PartialEscapePhase", "PEAResult", "PEAProcessor",
    "ObjectState", "PEAState", "MAX_VIRTUAL_ARRAY_LENGTH", "PEAError",
    "PEATool",
]
