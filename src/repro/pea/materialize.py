"""Materialization: turning a virtual object into a real allocation.

"When a previously virtual object needs to be created in the heap, an
actual allocation needs to be inserted, which is considered to be the
materialized value" (Section 5).  The inserted sequence is::

    New <type>
    Store <field> = <entry>     # for every non-default entry
    MonitorEnter                # lock_count times, for elided locks

All nodes are created *detached* and wired in by deferred effects;
``state.escape(...)`` is set *before* filling entries so cyclic virtual
object graphs terminate (object A referencing B referencing A).
"""

from __future__ import annotations

from typing import Optional

from ..bytecode.classfile import Program
from ..bytecode.instructions import FieldRef
from ..ir.node import Node
from ..ir.nodes import (ConstantNode, MonitorEnterNode, NewArrayNode,
                        NewInstanceNode, StoreFieldNode, StoreIndexedNode,
                        VirtualArrayNode, VirtualInstanceNode,
                        VirtualObjectNode)
from .effects import Effects
from .state import PEAState


def _is_default(value: Optional[Node]) -> bool:
    if value is None:
        return True
    return isinstance(value, ConstantNode) and value.value in (0, None) \
        and value.value is not False


def ensure_materialized(program: Program, state: PEAState,
                        virtual_object: VirtualObjectNode, anchor: Node,
                        effects: Effects) -> Node:
    """Materialize *virtual_object* immediately before *anchor* (if still
    virtual) and return the node producing the real object."""
    obj_state = state.get_state(virtual_object)
    if not obj_state.is_virtual:
        return obj_state.materialized_value

    entries = list(obj_state.entries)
    lock_count = obj_state.lock_count
    graph = effects.graph

    if isinstance(virtual_object, VirtualInstanceNode):
        materialized: Node = NewInstanceNode(virtual_object.class_name)
    elif isinstance(virtual_object, VirtualArrayNode):
        materialized = NewArrayNode(
            virtual_object.elem_type,
            length=graph.constant(virtual_object.length))
    else:  # pragma: no cover
        raise TypeError(f"unknown virtual object {virtual_object!r}")
    materialized.position = getattr(virtual_object, "position", None)
    effects.track_created(materialized)

    # Transition to escaped *first*: cycles hit the materialized value.
    obj_state.escape(materialized)
    effects.insert_fixed_before(anchor, materialized)

    for index, entry in enumerate(entries):
        if isinstance(entry, VirtualObjectNode):
            value = ensure_materialized(program, state, entry, anchor,
                                        effects)
        else:
            value = entry
        if _is_default(value):
            continue  # New already initialized defaults
        if isinstance(virtual_object, VirtualInstanceNode):
            store: Node = StoreFieldNode(
                FieldRef(virtual_object.class_name,
                         virtual_object.field_names[index]),
                object=materialized, value=value)
        else:
            store = StoreIndexedNode(array=materialized,
                                     index=graph.constant(index),
                                     value=value)
        effects.track_created(store)
        effects.insert_fixed_before(anchor, store)

    for _ in range(lock_count):
        enter = MonitorEnterNode(object=materialized)
        effects.track_created(enter)
        effects.insert_fixed_before(anchor, enter)

    return materialized


def borrow_materialized(program: Program, state: PEAState,
                        virtual_object: VirtualObjectNode, anchor: Node,
                        effects: Effects) -> Node:
    """Build a *throwaway copy* of a virtual object immediately before
    *anchor* — without escaping it.

    Used for invoke arguments whose callee parameter is summarized
    *borrowable* (read-only, never locked/returned/captured/stored):
    the callee observes field values and the exact type, both of which
    the copy reproduces, and cannot retain the reference — so the
    caller's object stays virtual and the copy is marked
    ``stack_allocated`` (a zone allocation, invisible to the heap
    statistics the paper's Table 1 measures).

    The caller must ensure every entry is a real value (no nested
    still-virtual objects) and ``lock_count == 0``.
    """
    obj_state = state.get_state(virtual_object)
    assert obj_state.is_virtual and obj_state.lock_count == 0
    graph = effects.graph

    if isinstance(virtual_object, VirtualInstanceNode):
        materialized: Node = NewInstanceNode(virtual_object.class_name)
    elif isinstance(virtual_object, VirtualArrayNode):
        materialized = NewArrayNode(
            virtual_object.elem_type,
            length=graph.constant(virtual_object.length))
    else:  # pragma: no cover
        raise TypeError(f"unknown virtual object {virtual_object!r}")
    materialized.position = getattr(virtual_object, "position", None)
    materialized.stack_allocated = True
    effects.track_created(materialized)
    effects.insert_fixed_before(anchor, materialized)

    for index, entry in enumerate(obj_state.entries):
        if isinstance(entry, VirtualObjectNode):
            entry_state = state.get_state(entry)
            assert not entry_state.is_virtual, \
                "borrow of an object with virtual entries"
            value: Node = entry_state.materialized_value
        else:
            value = entry
        if _is_default(value):
            continue
        if isinstance(virtual_object, VirtualInstanceNode):
            store: Node = StoreFieldNode(
                FieldRef(virtual_object.class_name,
                         virtual_object.field_names[index]),
                object=materialized, value=value)
        else:
            store = StoreIndexedNode(array=materialized,
                                     index=graph.constant(index),
                                     value=value)
        effects.track_created(store)
        effects.insert_fixed_before(anchor, store)
    return materialized
