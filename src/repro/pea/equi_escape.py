"""Flow-insensitive Escape Analysis baseline (equi-escape sets).

This is the comparator of the paper's Section 6.2: a Kotzmann-style
equi-escape-sets analysis (as used by the HotSpot compilers) that makes a
single, global escape decision per allocation.  If an object escapes on
*any* path — however unlikely — none of the optimizations apply to it.

The analysis itself is a union-find over reference-producing nodes: a
store of ``a`` into ``b`` places ``a`` and ``b`` in the same set; stores
to globals, returns and call arguments mark a set as escaping.  Frame
state references do NOT escape (Kotzmann & Mössenböck's insight:
deoptimization can rematerialize).

Scalar replacement / lock elision / frame-state rewriting then reuse the
Partial Escape Analysis machinery, restricted to the approved
allocations: since an approved allocation escapes nowhere, the
flow-sensitive pass will virtualize it everywhere without
materializations — which is exactly the classic transformation
(Listings 1-3 of the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..bytecode.classfile import Program
from ..ir.graph import Graph
from ..ir.node import Node
from ..ir.nodes import (ArrayLengthNode, ConstantNode, DeoptimizeNode,
                        EscapeObjectStateNode, FixedGuardNode,
                        FrameStateNode, IfNode,
                        InstanceOfNode, InvokeNode, IsNullNode,
                        LoadFieldNode, LoadIndexedNode, MergeNode,
                        MonitorEnterNode, MonitorExitNode, NewArrayNode,
                        NewInstanceNode, PhiNode, RefEqualsNode,
                        ReturnNode, StoreFieldNode, StoreIndexedNode,
                        StoreStaticNode)
from ..opt.phase import Phase
from .effects import Effects
from .partial_escape import PEAResult
from .processor import PEAProcessor


class EquiEscapeSets:
    """Union-find escape analysis over one graph."""

    def __init__(self, graph: Graph, program: Optional[Program] = None,
                 summaries=None):
        self.graph = graph
        self.program = program
        #: Optional :class:`repro.analysis.summaries.SummaryView`:
        #: invoke arguments whose callee parameter is summarized
        #: non-capturing stop escaping the set (they union with the
        #: parameters they flow into, and with the call result when
        #: returned, instead).
        self.summaries = summaries
        self._parent: Dict[Node, Node] = {}
        self._escaped: Set[Node] = set()  # set representatives that escape
        #: Invoke results unioned with an argument set (summary mode):
        #: they alias tracked objects, so their users get the same
        #: conservative category sweep as allocations.
        self._result_aliases: List[Node] = []

    # -- union-find ---------------------------------------------------------

    def _find(self, node: Node) -> Node:
        parent = self._parent.setdefault(node, node)
        if parent is node:
            return node
        root = self._find(parent)
        self._parent[node] = root
        return root

    def _union(self, a: Node, b: Node):
        root_a, root_b = self._find(a), self._find(b)
        if root_a is root_b:
            return
        escaped = root_a in self._escaped or root_b in self._escaped
        self._parent[root_b] = root_a
        self._escaped.discard(root_b)
        if escaped:
            self._escaped.add(root_a)

    def _mark_escaped(self, node: Optional[Node]):
        if node is None or isinstance(node, ConstantNode):
            return
        self._escaped.add(self._find(node))

    def is_escaped(self, node: Node) -> bool:
        return self._find(node) in self._escaped

    # -- the analysis ---------------------------------------------------------

    #: Node types whose *reference* inputs do not make an object escape.
    #: ``EscapeObjectStateNode`` is a frame-state appendage (the deopt
    #: snapshot of a still-virtual PEA object) — safe for the same
    #: reason the frame state itself is.
    _SAFE_USERS = (LoadFieldNode, ArrayLengthNode, RefEqualsNode,
                   IsNullNode, InstanceOfNode, MonitorEnterNode,
                   MonitorExitNode, FrameStateNode,
                   EscapeObjectStateNode, FixedGuardNode,
                   IfNode, DeoptimizeNode, LoadIndexedNode)

    def analyze(self) -> Set[Node]:
        """Returns the set of allocations that never escape."""
        allocations: List[Node] = []
        for node in self.graph.nodes():
            if isinstance(node, (NewInstanceNode, NewArrayNode)):
                allocations.append(node)
            elif isinstance(node, PhiNode):
                for value in node.values:
                    if value is not node and self._is_tracked_value(
                            value):
                        self._union(node, value)
            elif isinstance(node, StoreFieldNode):
                if self._is_tracked_value(node.value) and \
                        node.object is not None and \
                        self._is_reference_field(node):
                    self._union(node.object, node.value)
            elif isinstance(node, StoreIndexedNode):
                if self._is_tracked_value(node.value) and \
                        node.array is not None and \
                        self._is_reference_array(node.array):
                    self._union(node.array, node.value)
            elif isinstance(node, StoreStaticNode):
                self._mark_escaped(node.value)
            elif isinstance(node, ReturnNode):
                self._mark_escaped(node.value)
            elif isinstance(node, InvokeNode):
                self._process_invoke(node)
        # Any allocation referenced from a node category we don't model
        # escapes conservatively.
        for allocation in allocations + self._result_aliases:
            for user in allocation.usages:
                if not isinstance(user, self._SAFE_USERS + (
                        PhiNode, StoreFieldNode, StoreIndexedNode,
                        StoreStaticNode, ReturnNode, InvokeNode)):
                    self._mark_escaped(allocation)
        # Objects stored into non-allocation containers (parameters,
        # loads, call results) escape: the container is outside our
        # tracking.
        tracked = set(allocations)
        for node in self.graph.nodes():
            container = None
            if isinstance(node, StoreFieldNode):
                container = node.object
            elif isinstance(node, StoreIndexedNode):
                container = node.array
            if container is not None and container not in tracked and \
                    not isinstance(container, PhiNode):
                self._mark_escaped(node.value
                                   if isinstance(node, StoreFieldNode)
                                   else node.value)
        # Phis rooted (partly) in untracked references taint their set.
        for node in self.graph.nodes():
            if isinstance(node, PhiNode):
                for value in node.values:
                    if value is None or value is node:
                        continue
                    if not isinstance(value, (NewInstanceNode,
                                              NewArrayNode, PhiNode,
                                              ConstantNode)):
                        # Unknown provenance: treat the whole set as
                        # escaped if it holds references.
                        if self._holds_reference(value):
                            self._mark_escaped(node)
        return {a for a in allocations if not self.is_escaped(a)}

    def _process_invoke(self, node: InvokeNode):
        """Call arguments escape — unless an interprocedural summary
        proves the callee never captures the parameter (Kotzmann's
        *arg-escape* refinement, driven here by
        :mod:`repro.analysis.summaries`)."""
        summary = None
        if self.summaries is not None:
            summary = self.summaries.summary_for_call(node.target)
        if summary is None or summary.is_top:
            for argument in node.arguments:
                self._mark_escaped(argument)
            return
        unioned_result = False
        for position, argument in enumerate(node.arguments):
            if argument is None or isinstance(argument, ConstantNode):
                continue
            param = summary.param(position)
            if param.captured:
                self._mark_escaped(argument)
                continue
            for target in param.flows_to:
                if not self._is_tracked_value(argument):
                    # Mirrors the StoreField rule: foreign references
                    # neither escape nor poison the container's set.
                    continue
                if target < len(node.arguments) and \
                        self._is_tracked_value(node.arguments[target]):
                    self._union(argument, node.arguments[target])
                else:
                    # Flows into a container we don't track.
                    self._mark_escaped(argument)
            if param.returned and self._is_tracked_value(argument):
                # The call result aliases the argument's set.
                self._union(argument, node)
                unioned_result = True
        if unioned_result:
            self._result_aliases.append(node)

    @staticmethod
    def _is_tracked_value(node: Optional[Node]) -> bool:
        """Only allocations (and phis, which may carry them) join an
        equi-escape set when stored; primitives and foreign references
        neither escape the container nor get poisoned by it."""
        return isinstance(node, (NewInstanceNode, NewArrayNode, PhiNode))

    def _is_reference_field(self, store: StoreFieldNode) -> bool:
        if self.program is None:
            return True  # conservative without layout information
        try:
            jfield = self.program.resolve_field(store.field.class_name,
                                                store.field.field_name)
        except Exception:  # noqa: BLE001 - unresolved: stay conservative
            return True
        return jfield.type_name not in ("int", "boolean")

    @staticmethod
    def _is_reference_array(array: Node) -> bool:
        if isinstance(array, NewArrayNode):
            return array.elem_type not in ("int", "boolean")
        return True  # unknown array: conservative

    @staticmethod
    def _holds_reference(node: Node) -> bool:
        return isinstance(node, (LoadFieldNode, LoadIndexedNode,
                                 InvokeNode)) or type(node).__name__ in (
                                     "ParameterNode", "LoadStaticNode")


class EquiEscapePhase(Phase):
    """Whole-method Escape Analysis + scalar replacement (the baseline
    configuration of Section 6.2)."""

    name = "equi-escape-analysis"

    def __init__(self, program: Program):
        self.program = program
        self.last_result: Optional[PEAResult] = None

    def run(self, graph: Graph) -> bool:
        from ..opt.canonicalize import CanonicalizerPhase
        from ..opt.dce import DeadCodeEliminationPhase

        approved = EquiEscapeSets(graph, self.program).analyze()
        if not approved:
            self.last_result = PEAResult()
            return False
        effects = Effects(graph)
        processor = PEAProcessor(graph, self.program, effects)
        processor.tool.allowed_allocations = approved
        tool = processor.run()
        result = PEAResult(
            virtualized_allocations=tool.virtualized_allocations,
            materializations=tool.materializations,
            removed_monitor_pairs=tool.removed_monitor_pairs)
        if len(effects):
            result.applied_effects = effects.apply()
            graph.verify()
            CanonicalizerPhase().run(graph)
            DeadCodeEliminationPhase().run(graph)
        self.last_result = result
        return result.applied_effects > 0
