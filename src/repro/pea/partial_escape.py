"""The Partial Escape Analysis phase — the paper's contribution.

Runs the control-flow-sensitive analysis
(:class:`~repro.pea.processor.PEAProcessor`), then applies the recorded
effects: scalar replacement of virtual allocations, lock elision on
virtual monitors, materialization on escaping branches, and frame-state
rewriting for deoptimization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..bytecode.classfile import Program
from ..ir.graph import Graph
from ..opt.phase import Phase
from .effects import Effects
from .processor import PEAProcessor


@dataclass
class PEAResult:
    """Statistics from one Partial Escape Analysis application."""

    virtualized_allocations: int = 0
    materializations: int = 0
    removed_monitor_pairs: int = 0
    applied_effects: int = 0
    #: Summary-guided invoke decisions (summary-enabled tiers only).
    nulled_args: int = 0
    borrowed_args: int = 0
    #: Escape-site attribution
    #: (:class:`repro.analysis.diagnostics.MaterializationEvent`, plain
    #: data — survives the compilation cache's detached pickles).
    #: Unlike :attr:`materializations`, this list is exact: events from
    #: rolled-back loop-processing retries are discarded with them.
    events: list = field(default_factory=list)

    @property
    def fully_removed_allocations(self) -> int:
        """Allocations removed with no materialization anywhere (an upper
        bound: materializations are not tied back to allocations)."""
        return max(0, self.virtualized_allocations - self.materializations)


class PartialEscapePhase(Phase):
    name = "partial-escape-analysis"

    def __init__(self, program: Program, iterations: int = 2,
                 virtualize_arrays: bool = True,
                 fold_virtual_checks: bool = True, summaries=None):
        self.program = program
        #: Graal applies PEA multiple times; later rounds pick up
        #: opportunities exposed by the previous round's simplifications.
        self.iterations = iterations
        #: Ablation knobs (see benchmarks/bench_ablation.py).
        self.virtualize_arrays = virtualize_arrays
        self.fold_virtual_checks = fold_virtual_checks
        #: Interprocedural escape summaries (a
        #: :class:`repro.analysis.summaries.SummaryView`), or None for
        #: the paper's conservative invoke handling.
        self.summaries = summaries
        self.last_result: Optional[PEAResult] = None

    def run(self, graph: Graph) -> bool:
        from ..opt.canonicalize import CanonicalizerPhase
        from ..opt.dce import DeadCodeEliminationPhase

        total = PEAResult()
        changed_any = False
        for _ in range(max(1, self.iterations)):
            changed = self.run_once(graph, total)
            if changed:
                # Pick up constants/branch folds produced by this round.
                CanonicalizerPhase().run(graph)
                DeadCodeEliminationPhase().run(graph)
                changed_any = True
            else:
                break
        self.last_result = total
        return changed_any

    def run_once(self, graph: Graph, total: PEAResult) -> bool:
        effects = Effects(graph)
        processor = PEAProcessor(graph, self.program, effects)
        processor.tool.virtualize_arrays = self.virtualize_arrays
        processor.tool.fold_virtual_checks = self.fold_virtual_checks
        processor.tool.summaries = self.summaries
        tool = processor.run()
        if len(effects) == 0:
            return False
        applied = effects.apply()
        graph.verify()
        total.virtualized_allocations += tool.virtualized_allocations
        total.materializations += tool.materializations
        total.removed_monitor_pairs += tool.removed_monitor_pairs
        total.applied_effects += applied
        total.events.extend(tool.events)
        total.nulled_args += sum(1 for event in tool.events
                                 if event.kind == "nulled_arg")
        total.borrowed_args += sum(1 for event in tool.events
                                   if event.kind == "borrowed")
        return True
