"""The control-flow iteration driving Partial Escape Analysis.

Processes the IR blocks in reverse post order, branching the allocation
state at control splits, merging at Merge nodes (via
:class:`~repro.pea.merge.MergeProcessor`) and handling loops with the
iterative speculative-state algorithm of Section 5.4 / Figure 7:

    the loop body is processed with a speculative state taken from the
    loop predecessor; if the state merged over the back edges differs
    from the speculation, the effects are discarded and the loop is
    re-processed with an adapted speculation (objects that cannot stay
    virtual across iterations are materialized at the loop entry,
    loop-variant entries become phis) until a fixed point is reached.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..bytecode.classfile import Program
from ..ir.graph import Graph
from ..ir.node import Node
from ..ir.nodes import (DeoptimizeNode, EndNode, IfNode, LoopBeginNode,
                        LoopEndNode, MergeNode, PhiNode, ReturnNode,
                        VirtualObjectNode)
from ..scheduler.cfg import ControlFlowGraph, IRBlock
from .effects import Effects
from .merge import MergeProcessor
from .state import PEAState
from .virtualization import PEAError, PEATool

#: Abort knob: loops that do not converge within this many retries are a
#: bug (each retry strictly grows the materialization/phi sets).
MAX_LOOP_ITERATIONS = 50


class _LoopScope:
    """Edge-routing context while a loop is being (re)processed."""

    def __init__(self, header: IRBlock, members: Set[IRBlock]):
        self.header = header
        self.members = members
        #: LoopEnd node -> state at the back edge.
        self.backedges: Dict[Node, PEAState] = {}
        #: Edges leaving the loop: (target block, key node, state).
        self.exits: List[Tuple[IRBlock, Node, PEAState]] = []

    def reset(self):
        self.backedges.clear()
        self.exits.clear()


class PEAProcessor:
    def __init__(self, graph: Graph, program: Program, effects: Effects):
        self.graph = graph
        self.program = program
        self.effects = effects
        self.tool = PEATool(program, effects)
        self.merge_processor = MergeProcessor(self.tool)
        self.cfg = ControlFlowGraph(graph)
        #: block -> list of (key node, state); key is the End node for
        #: merge targets (None for straight-line edges).
        self.pending: Dict[IRBlock, List[Tuple[Optional[Node],
                                               PEAState]]] = {}
        self.scopes: List[_LoopScope] = []

    # -- public --------------------------------------------------------------

    def run(self) -> PEATool:
        entry = self.cfg.block_of[self.graph.start]
        self.pending[entry] = [(None, PEAState())]
        self._iterate(self.cfg.rpo)
        return self.tool

    # -- iteration over an RPO-ordered block list ---------------------------------

    def _iterate(self, blocks: Sequence[IRBlock]):
        index = 0
        processed_members: Set[IRBlock] = set()
        while index < len(blocks):
            block = blocks[index]
            index += 1
            if block in processed_members:
                continue
            if block not in self.pending:
                continue  # unreachable along analyzed paths
            if block.is_loop_header:
                members = self.cfg.loop_members(block)
                self._process_loop(block)
                processed_members |= members
            else:
                state = self._entry_state(block)
                self._process_block(block, state, skip_first=isinstance(
                    block.first, MergeNode))

    def _entry_state(self, block: IRBlock) -> PEAState:
        incoming = self.pending.pop(block)
        first = block.first
        if isinstance(first, MergeNode) and not isinstance(first,
                                                           LoopBeginNode):
            by_end = {key: state for key, state in incoming}
            ends = list(first.ends)
            states = [by_end[end] for end in ends]
            return self.merge_processor.merge(first, states, ends)
        if len(incoming) != 1:
            raise PEAError(f"block {block} expected one incoming edge, "
                           f"got {len(incoming)}")
        return incoming[0][1]

    # -- single block -----------------------------------------------------------------

    def _process_block(self, block: IRBlock, state: PEAState,
                       skip_first: bool):
        nodes = block.nodes[1:] if skip_first else list(block.nodes)
        for node in nodes:
            self.tool.process_node(node, state)
        self._route_edges(block, state)

    def _route_edges(self, block: IRBlock, state: PEAState):
        last = block.nodes[-1]
        if isinstance(last, IfNode):
            # "a copy of the current state is created, because it has to
            # be propagated to both successors" (Section 4).
            for succ_node in last.successors():
                succ_block = self.cfg.block_of[succ_node]
                self._record_edge(succ_block, None, state.copy())
        elif isinstance(last, EndNode):
            merge_block = self.cfg.block_of[last.merge()]
            self._record_edge(merge_block, last, state)
        elif isinstance(last, LoopEndNode):
            self._record_backedge(last, state)
        elif isinstance(last, (ReturnNode, DeoptimizeNode)):
            pass  # control sink
        else:
            raise PEAError(f"unexpected block terminator {last!r}")

    def _record_edge(self, target: IRBlock, key: Optional[Node],
                     state: PEAState):
        for scope in reversed(self.scopes):
            if target not in scope.members:
                scope.exits.append((target, key, state))
                return
            break
        self.pending.setdefault(target, []).append((key, state))

    def _record_backedge(self, loop_end: LoopEndNode, state: PEAState):
        loop_begin = loop_end.loop_begin
        for scope in reversed(self.scopes):
            if scope.header.first is loop_begin:
                scope.backedges[loop_end] = state
                return
        raise PEAError(f"back edge {loop_end!r} outside its loop scope")

    # -- loops (Section 5.4) --------------------------------------------------------

    def _process_loop(self, header: IRBlock):
        loop_begin: LoopBeginNode = header.first  # type: ignore
        members = self.cfg.loop_members(header)
        incoming = self.pending.pop(header)
        if len(loop_begin.ends) != 1:
            raise PEAError("LoopBegin must have exactly one forward end")
        forward_end = loop_begin.ends[0]
        if len(incoming) != 1:
            raise PEAError("loop header expected one forward edge")
        entry_state = incoming[0][1]

        # Adaptation sets, grown monotonically across retries.
        required_mat: List[VirtualObjectNode] = []
        required_phis: Dict[Tuple[VirtualObjectNode, int], PhiNode] = {}
        banned_phis: Set[PhiNode] = set()
        scope = _LoopScope(header, members)

        for _ in range(MAX_LOOP_ITERATIONS):
            checkpoint = self.effects.mark()
            replacements_snapshot = dict(self.tool.replacements)
            deleted_snapshot = set(self.tool.deleted)
            events_snapshot = list(self.tool.events)
            pending_snapshot = {b: list(v)
                                for b, v in self.pending.items()}
            scope.reset()

            speculative, phi_entry_values, phi_aliases = self._adapt(
                entry_state, loop_begin, forward_end, required_mat,
                required_phis, banned_phis)

            self.scopes.append(scope)
            try:
                self._process_block(header, speculative.copy(),
                                    skip_first=True)
                member_rpo = [b for b in self.cfg.rpo
                              if b in members and b is not header]
                self._iterate(member_rpo)
            finally:
                self.scopes.pop()

            new_mat, new_phi_keys, new_bans = self._examine(
                entry_state, loop_begin, speculative, scope,
                required_phis, phi_aliases)

            if not new_mat and not new_phi_keys and not new_bans:
                self._commit_loop(loop_begin, forward_end, entry_state,
                                  speculative, scope, required_phis,
                                  phi_entry_values, phi_aliases)
                # Replay exit edges into the enclosing context.
                for target, key, state in scope.exits:
                    self._record_edge(target, key, state)
                return
            # Retry with an adapted speculation.
            self.effects.rollback(checkpoint)
            self.tool.replacements = replacements_snapshot
            self.tool.deleted = deleted_snapshot
            self.tool.events = events_snapshot
            self.pending = pending_snapshot
            for vo in new_mat:
                if vo not in required_mat:
                    required_mat.append(vo)
            for key in new_phi_keys:
                if key not in required_phis:
                    phi = PhiNode()
                    required_phis[key] = phi
            banned_phis |= new_bans
        raise PEAError(f"loop at {loop_begin!r} did not converge")

    def _adapt(self, entry_state: PEAState, loop_begin: LoopBeginNode,
               forward_end: Node,
               required_mat: List[VirtualObjectNode],
               required_phis: Dict, banned_phis: Set[PhiNode]):
        """Build the speculative loop-entry state (Figure 7's B)."""
        speculative = entry_state.copy()
        for vo in required_mat:
            if vo in speculative.object_states and \
                    speculative.get_state(vo).is_virtual:
                self.tool.materialize(speculative, vo, forward_end)
        phi_entry_values: Dict[Tuple, Node] = {}
        for (vo, index), phi in required_phis.items():
            if vo in speculative.object_states:
                obj_state = speculative.get_state(vo)
                if obj_state.is_virtual:
                    phi_entry_values[(vo, index)] = \
                        obj_state.entries[index]
                    obj_state.entries[index] = phi
        # Optimistic aliasing of the builder's loop phis (Figure 6 (c)
        # applied speculatively to the loop header).
        phi_aliases: Dict[PhiNode, VirtualObjectNode] = {}
        for phi in loop_begin.phis():
            if phi in banned_phis:
                continue
            forward_value = self.tool.resolve(phi.values[0])
            alias = speculative.get_alias(forward_value)
            if alias is not None and \
                    speculative.get_state(alias).is_virtual:
                speculative.add_alias(phi, alias)
                phi_aliases[phi] = alias
        return speculative, phi_entry_values, phi_aliases

    def _examine(self, entry_state: PEAState, loop_begin: LoopBeginNode,
                 speculative: PEAState, scope: _LoopScope,
                 required_phis: Dict, phi_aliases: Dict):
        """Compare the merged back-edge states against the speculation;
        returns the new adaptation requirements (empty = fixed point)."""
        new_mat: List[VirtualObjectNode] = []
        new_phi_keys: List[Tuple[VirtualObjectNode, int]] = []
        new_bans: Set[PhiNode] = set()
        backedge_states = [scope.backedges[le]
                           for le in loop_begin.loop_ends
                           if le in scope.backedges]
        for vo, spec_state in speculative.object_states.items():
            if not spec_state.is_virtual:
                continue
            for back_state in backedge_states:
                back = back_state.object_states.get(vo)
                if back is None or not back.is_virtual or \
                        back.lock_count != spec_state.lock_count:
                    new_mat.append(vo)
                    break
            else:
                for index, entry in enumerate(spec_state.entries):
                    values = [bs.get_state(vo).entries[index]
                              for bs in backedge_states]
                    if all(v is entry for v in values):
                        continue
                    if isinstance(entry, VirtualObjectNode) or any(
                            isinstance(v, VirtualObjectNode)
                            for v in values):
                        new_mat.append(vo)
                        break
                    if (vo, index) not in required_phis:
                        new_phi_keys.append((vo, index))
        # Validate optimistic phi aliases against the back edges.
        end_count = len(loop_begin.ends)
        for phi, alias in phi_aliases.items():
            for position, loop_end in enumerate(loop_begin.loop_ends):
                back_state = scope.backedges.get(loop_end)
                if back_state is None:
                    continue
                value = self.tool.resolve(
                    phi.values[end_count + position])
                if back_state.get_alias(value) is not alias:
                    new_bans.add(phi)
                    if alias not in new_mat:
                        new_mat.append(alias)
                    break
        # A phi that stays a real phi has its back-edge inputs
        # materialized at the loop ends during commit — *inside* the
        # loop.  A per-iteration object materializing there is fine
        # (the interpreter allocates one per trip too), but a
        # loop-invariant virtual reached by that materialization — the
        # back-edge alias itself, or a virtual stored in its fields —
        # would be re-allocated as a fresh copy every iteration.
        # Require such objects materialized once, at the loop entry.
        for phi in loop_begin.phis():
            if phi in phi_aliases and phi not in new_bans:
                continue
            for position, loop_end in enumerate(loop_begin.loop_ends):
                back_state = scope.backedges.get(loop_end)
                if back_state is None:
                    continue
                alias = back_state.get_alias(
                    self.tool.resolve(phi.values[end_count + position]))
                if alias is None:
                    continue
                for reached in self._reachable_virtuals(alias,
                                                        back_state):
                    spec_state = speculative.object_states.get(reached)
                    if spec_state is not None and \
                            spec_state.is_virtual and \
                            reached not in new_mat:
                        new_mat.append(reached)
        return new_mat, new_phi_keys, new_bans

    @staticmethod
    def _reachable_virtuals(root: VirtualObjectNode,
                            state: PEAState) -> List[VirtualObjectNode]:
        """*root* plus every virtual object reachable from its entries
        in *state* — the set ``ensure_materialized`` would allocate."""
        seen: List[VirtualObjectNode] = []
        stack = [root]
        while stack:
            vo = stack.pop()
            if vo in seen:
                continue
            seen.append(vo)
            obj_state = state.object_states.get(vo)
            if obj_state is None or not obj_state.is_virtual:
                continue
            stack.extend(entry for entry in obj_state.entries
                         if isinstance(entry, VirtualObjectNode))
        return seen

    def _commit_loop(self, loop_begin: LoopBeginNode, forward_end: Node,
                     entry_state: PEAState, speculative: PEAState,
                     scope: _LoopScope, required_phis: Dict,
                     phi_entry_values: Dict, phi_aliases: Dict):
        """The fixed point holds: wire up loop phis and fix the builder's
        phis whose inputs reference tracked objects."""
        effects = self.effects
        loop_ends = list(loop_begin.loop_ends)
        backedge_states = [scope.backedges[le] for le in loop_ends]

        for (vo, index), phi in required_phis.items():
            entry_value = phi_entry_values.get((vo, index))
            if entry_value is None:
                continue  # object escaped; phi never used
            inputs = [entry_value] + [
                bs.get_state(vo).entries[index] for bs in backedge_states]
            self._register_loop_phi(phi, loop_begin, inputs)

        end_count = len(loop_begin.ends)
        for phi in list(loop_begin.phis()):
            if phi in phi_aliases:
                continue  # stays an alias of a virtual object
            # The forward position resolves against the *adapted* entry
            # state: objects forced into required_mat were already
            # materialized at the forward end during adaptation.
            pred_states = [speculative] + backedge_states
            anchors = [forward_end] + loop_ends
            new_inputs = []
            changed = False
            for position, pred_state in enumerate(pred_states):
                value = self.tool.resolve(phi.values[position])
                alias = pred_state.get_alias(value)
                if alias is not None:
                    obj_state = pred_state.get_state(alias)
                    if obj_state.is_virtual:
                        value = self.tool.materialize(
                            pred_state, alias, anchors[position])
                    else:
                        value = obj_state.materialized_value
                if value is not phi.values[position]:
                    changed = True
                new_inputs.append(value)
            if changed:
                effects.set_phi_inputs(phi, new_inputs)

    def _register_loop_phi(self, phi: PhiNode, loop_begin: LoopBeginNode,
                           inputs: List[Node]):
        def action():
            graph = self.effects.graph
            if phi.graph is None:
                graph.add(phi)
            phi.merge = loop_begin
            resolved = []
            for value in inputs:
                if value is not None and value.graph is None:
                    graph.add(value)
                resolved.append(value)
            phi.values.set_all(resolved)
        self.effects.add(f"create loop phi at {loop_begin!r}", action)
