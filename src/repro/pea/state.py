"""The flow-sensitive allocation state of Partial Escape Analysis.

Mirrors the paper's Listing 7: a map from allocation Ids
(:class:`~repro.ir.nodes.virtual.VirtualObjectNode`) to per-branch
:class:`ObjectState`s, plus an ``aliases`` map from IR value nodes to Ids.
An ObjectState is either *virtual* — entries and lock count known exactly
— or *escaped* — only the materialized value is known.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.node import Node
from ..ir.nodes import VirtualObjectNode


class ObjectState:
    """Per-branch knowledge about one allocation."""

    __slots__ = ("virtual_object", "entries", "lock_count",
                 "materialized_value")

    def __init__(self, virtual_object: VirtualObjectNode,
                 entries: Optional[List[Node]] = None, lock_count: int = 0,
                 materialized_value: Optional[Node] = None):
        self.virtual_object = virtual_object
        #: Entry values while virtual (a value node, or a
        #: VirtualObjectNode for a stored virtual object); None once
        #: escaped.
        self.entries = entries
        self.lock_count = lock_count
        #: The node producing the real object once escaped.
        self.materialized_value = materialized_value

    @property
    def is_virtual(self) -> bool:
        return self.entries is not None

    def copy(self) -> "ObjectState":
        return ObjectState(
            self.virtual_object,
            list(self.entries) if self.entries is not None else None,
            self.lock_count, self.materialized_value)

    def escape(self, materialized_value: Node):
        self.entries = None
        self.materialized_value = materialized_value

    def equivalent(self, other: "ObjectState") -> bool:
        return (self.virtual_object is other.virtual_object
                and self.lock_count == other.lock_count
                and self.is_virtual == other.is_virtual
                and self.materialized_value is other.materialized_value
                and (self.entries is None
                     or all(a is b for a, b in zip(self.entries,
                                                   other.entries))))

    def __repr__(self):
        if self.is_virtual:
            entries = ", ".join(str(getattr(e, "id", e))
                                for e in self.entries)
            return (f"v[{self.virtual_object}] locks={self.lock_count} "
                    f"({entries})")
        return f"e[{self.virtual_object}] -> {self.materialized_value!r}"


class PEAState:
    """The state propagated through control flow (paper Listing 7)."""

    __slots__ = ("object_states", "aliases")

    def __init__(self,
                 object_states: Optional[Dict[VirtualObjectNode,
                                              ObjectState]] = None,
                 aliases: Optional[Dict[Node, VirtualObjectNode]] = None):
        self.object_states = object_states if object_states is not None \
            else {}
        self.aliases = aliases if aliases is not None else {}

    def copy(self) -> "PEAState":
        return PEAState(
            {vo: st.copy() for vo, st in self.object_states.items()},
            dict(self.aliases))

    # -- alias queries -----------------------------------------------------

    def get_alias(self, node: Optional[Node]
                  ) -> Optional[VirtualObjectNode]:
        """The allocation Id *node* refers to, if tracked."""
        if node is None:
            return None
        if isinstance(node, VirtualObjectNode):
            return node if node in self.object_states else None
        return self.aliases.get(node)

    def add_alias(self, node: Node, virtual_object: VirtualObjectNode):
        self.aliases[node] = virtual_object

    def get_state(self, virtual_object: VirtualObjectNode) -> ObjectState:
        return self.object_states[virtual_object]

    def state_for(self, node: Node) -> Optional[ObjectState]:
        alias = self.get_alias(node)
        return self.object_states.get(alias) if alias is not None else None

    def add_object(self, state: ObjectState):
        self.object_states[state.virtual_object] = state

    # -- comparison (loop fixed point) ------------------------------------------

    def equivalent(self, other: "PEAState") -> bool:
        if self.object_states.keys() != other.object_states.keys():
            return False
        for vo, state in self.object_states.items():
            if not state.equivalent(other.object_states[vo]):
                return False
        return self.aliases == other.aliases

    def __repr__(self):
        return (f"PEAState({list(self.object_states.values())}, "
                f"aliases={{{len(self.aliases)}}})")
