"""The tiered JIT virtual machine."""

from .compiler import CompilationResult, Compiler
from .options import CompilerConfig, EscapeAnalysisKind
from .vm import VM

__all__ = ["CompilationResult", "Compiler", "CompilerConfig",
           "EscapeAnalysisKind", "VM"]
