"""The tiered JIT virtual machine."""

from .cache import CacheStats, CompilationCache, default_cache_dir
from .compiler import CompilationResult, Compiler
from .listeners import VMListener
from .options import CompilerConfig, EscapeAnalysisKind
from .vm import VM

__all__ = ["CacheStats", "CompilationCache", "CompilationResult",
           "Compiler", "CompilerConfig", "EscapeAnalysisKind", "VM",
           "VMListener", "default_cache_dir"]
