"""The tiered JIT virtual machine."""

from .cache import CacheStats, CompilationCache, default_cache_dir
from .client import CompileReply, ServiceClient
from .compiler import CompilationResult, Compiler
from .listeners import VMListener
from .options import (AutoTierPolicy, CompilerConfig,
                      EscapeAnalysisKind, TierRequest, TierSpec)
from .server import CompileService
from .vm import VM

__all__ = ["AutoTierPolicy", "CacheStats", "CompilationCache",
           "CompilationResult", "CompileReply", "CompileService",
           "Compiler", "CompilerConfig", "EscapeAnalysisKind",
           "ServiceClient", "TierRequest", "TierSpec", "VM",
           "VMListener", "default_cache_dir"]
