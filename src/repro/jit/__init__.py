"""The tiered JIT virtual machine."""

from .cache import CacheStats, CompilationCache, default_cache_dir
from .client import CompileReply, ServiceClient
from .compiler import CompilationResult, Compiler
from .listeners import VMListener
from .options import CompilerConfig, EscapeAnalysisKind
from .server import CompileService
from .vm import VM

__all__ = ["CacheStats", "CompilationCache", "CompilationResult",
           "CompileReply", "CompileService", "Compiler",
           "CompilerConfig", "EscapeAnalysisKind", "ServiceClient",
           "VM", "VMListener", "default_cache_dir"]
