"""Compiler/VM configuration — the evaluation's configurations map to
these flags (no EA / equi-escape EA / connection-graph tier / Partial
Escape Analysis).

Since ISSUE 9 the escape-related knobs are unified behind one policy:
``CompilerConfig.escape_tier``.  A tier is either a *token* string —

``"none"``
    no escape analysis at all;
``"equi"``
    the union-find equi-escape baseline (Section 6.2 comparator);
``"conngraph"``
    the cheap connection-graph tier: directed escape-graph
    reachability (:mod:`repro.analysis.conngraph`) feeding stack
    allocation and straight-line lock elision, with interprocedural
    summaries at call sites — no PEA;
``"pea"``
    the paper's Partial Escape Analysis (optionally
    ``"pea+summaries"``, ``"pea+stack"``, ``"pea+cgstack"`` …);
``"auto"``
    per-method selection by :data:`AUTO_TIER_POLICY` (hot small
    methods get PEA, everything else the connection graph)

— or a callable *policy* receiving a :class:`TierRequest` (method
name, bytecode size, hotness from the profile, compile-service queue
depth) and returning a token or :class:`TierSpec` per method.

The pre-ISSUE-9 booleans (``escape_analysis``, ``escape_summaries``,
``stack_allocation``) survive as deprecation shims that map onto the
policy and warn once per knob.
"""

from __future__ import annotations

import enum
import os
import warnings
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from ..opt.inlining import InliningPolicy
from ..runtime.costmodel import CostModel


def _default_verify_ir() -> bool:
    """``REPRO_VERIFY_IR=1`` turns the full invariant verifier on by
    default (tests/conftest.py sets it, so it is always on under
    pytest)."""
    return os.environ.get("REPRO_VERIFY_IR", "") == "1"


class EscapeAnalysisKind(enum.Enum):
    """Legacy escape-analysis selector.

    Deprecated since ISSUE 9 in favor of ``CompilerConfig.escape_tier``;
    kept so existing ``CompilerConfig(escape_analysis=...)`` call sites
    keep working through the shim.
    """

    NONE = "none"
    EQUI_ESCAPE = "equi-escape"  # flow-insensitive baseline (Section 6.2)
    PARTIAL = "partial"  # the paper's contribution


#: Escape-tier bases, cheapest first.
TIER_BASES = ("none", "equi", "conngraph", "pea")

_KIND_TO_BASE = {
    EscapeAnalysisKind.NONE: "none",
    EscapeAnalysisKind.EQUI_ESCAPE: "equi",
    EscapeAnalysisKind.PARTIAL: "pea",
}
_BASE_TO_KIND = {base: kind for kind, base in _KIND_TO_BASE.items()}


@dataclass(frozen=True)
class TierSpec:
    """A fully resolved escape tier for one compilation.

    ``base`` selects the analysis machinery; ``summaries`` enables the
    interprocedural escape summaries at call sites; ``stack_analysis``
    (``None`` / ``"equi"`` / ``"conngraph"``) selects which analysis, if
    any, drives :class:`repro.opt.stack_allocation.StackAllocationPhase`.
    The ``conngraph`` base always implies summaries and
    connection-graph-driven stack allocation — that *is* the tier.
    """

    base: str = "pea"
    summaries: bool = False
    stack_analysis: Optional[str] = None

    def __post_init__(self):
        if self.base not in TIER_BASES:
            raise ValueError(f"unknown escape tier base {self.base!r}")
        if self.stack_analysis not in (None, "equi", "conngraph"):
            raise ValueError(
                f"unknown stack analysis {self.stack_analysis!r}")
        if self.base == "conngraph" and (
                not self.summaries or self.stack_analysis != "conngraph"):
            object.__setattr__(self, "summaries", True)
            object.__setattr__(self, "stack_analysis", "conngraph")

    def token(self) -> str:
        """Canonical string form, parseable by :meth:`parse`."""
        if self.base == "conngraph":
            return "conngraph"
        parts = [self.base]
        if self.summaries:
            parts.append("summaries")
        if self.stack_analysis == "equi":
            parts.append("stack")
        elif self.stack_analysis == "conngraph":
            parts.append("cgstack")
        return "+".join(parts)

    @classmethod
    def parse(cls, token: Union[str, "TierSpec"]) -> "TierSpec":
        if isinstance(token, TierSpec):
            return token
        parts = token.split("+")
        base = parts[0]
        if base not in TIER_BASES:
            raise ValueError(
                f"unknown escape tier {token!r} "
                f"(bases: {', '.join(TIER_BASES)})")
        summaries = False
        stack_analysis = None
        for flag in parts[1:]:
            if flag == "summaries":
                summaries = True
            elif flag == "stack":
                stack_analysis = "equi"
            elif flag == "cgstack":
                stack_analysis = "conngraph"
            else:
                raise ValueError(
                    f"unknown escape tier flag {flag!r} in {token!r}")
        return cls(base, summaries, stack_analysis)


@dataclass(frozen=True)
class TierRequest:
    """What a :data:`TierPolicy` gets to look at for one method."""

    method_name: str
    #: Bytecode instruction count of the method.
    method_size: int
    #: Invocation count observed by the profile at compile time.
    hotness: int
    #: Pending jobs on the compile-service queue (0 for in-process
    #: compilation) — a busy fleet should prefer the cheap tier.
    queue_depth: int = 0


#: A tier policy maps a per-method request to a tier token or spec.
TierPolicy = Callable[[TierRequest], Union[str, TierSpec]]


@dataclass(frozen=True)
class AutoTierPolicy:
    """The built-in ``"auto"`` policy.

    Hot, reasonably sized methods get the precise tier (PEA +
    summaries); cold or oversized methods — and any method compiled
    while the service queue is deep — get the cheap connection-graph
    tier.  The thresholds are deliberately simple; the point of the
    policy *object* is that users can swap in their own.
    """

    #: Invocation count at which a method counts as hot (2x the default
    #: compile threshold: the second compilation opportunity).
    hot_invocations: int = 40
    #: Methods with more bytecodes than this never get PEA.
    large_method_size: int = 300
    #: Service queue depth at which everything degrades to the cheap
    #: tier.
    busy_queue_depth: int = 4

    def __call__(self, request: TierRequest) -> str:
        if request.queue_depth >= self.busy_queue_depth:
            return "conngraph"
        if request.method_size > self.large_method_size:
            return "conngraph"
        if request.hotness >= self.hot_invocations:
            return "pea+summaries"
        return "conngraph"

    def fingerprint(self):
        return ("auto", self.hot_invocations, self.large_method_size,
                self.busy_queue_depth)


AUTO_TIER_POLICY = AutoTierPolicy()


_DEPRECATION_WARNED = set()


def _warn_deprecated(knob: str, replacement: str):
    if knob in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(knob)
    warnings.warn(
        f"CompilerConfig.{knob} is deprecated; use "
        f"CompilerConfig.escape_tier={replacement} instead",
        DeprecationWarning, stacklevel=4)


@dataclass
class CompilerConfig:
    """One VM configuration."""

    #: The escape-tier policy: a token string (``"none"``, ``"equi"``,
    #: ``"conngraph"``, ``"pea"``, ``"pea+summaries"``, ...), a
    #: :class:`TierSpec`, ``"auto"``, or a :data:`TierPolicy` callable
    #: evaluated per method.  See the module docstring.
    escape_tier: Union[str, TierSpec, TierPolicy] = "pea"
    #: Deprecated (ISSUE 9): use ``escape_tier``.  Maps NONE/EQUI_ESCAPE/
    #: PARTIAL onto the tier base.
    escape_analysis: Optional[EscapeAnalysisKind] = None
    inline: bool = True
    inlining_policy: InliningPolicy = field(default_factory=InliningPolicy)
    canonicalize: bool = True
    gvn: bool = True
    #: Invocations before a method is compiled.
    compile_threshold: int = 20
    #: On-stack replacement: tier up at loop backedges, so a hot loop
    #: inside a long-running interpreted method reaches compiled code
    #: mid-method (the second axis of the two-axis tiering policy).
    osr: bool = True
    #: Backedge executions of one (method, loop-header bci) before an
    #: OSR compilation is requested.  Sits above the invocation
    #: threshold because a backedge fires once per iteration, not once
    #: per call.
    osr_threshold: int = 60
    #: Optimistic branch speculation (never-taken branches -> guards).
    #: Profiling only happens while interpreted, so the sample floor must
    #: sit below the compile threshold; bad speculation is repaired by
    #: deopt + invalidation + recompile.
    speculate_branches: bool = True
    speculation_min_samples: int = 16
    #: Profile-guided devirtualization of CHA-polymorphic calls.
    speculate_types: bool = True
    #: Deoptimizations of one method before its code is thrown away and
    #: recompiled without the failed assumption.
    deopt_invalidate_threshold: int = 3
    #: Deoptless dispatched OSR (Flückiger & Krynski 2022): a deopt at
    #: a specializable site (conditional branch / invokevirtual) does
    #: not fall back to the interpreter — the VM derives a dispatch
    #: context from the failing runtime state, compiles a continuation
    #: entering at the deopt bci specialized against that context, and
    #: dispatches among live variants on every later deopt there.
    #: Deopts still count toward ``deopt_invalidate_threshold``, so the
    #: method entry converges to unspeculated code exactly as without
    #: deoptless; the continuations only bridge the re-tiering window
    #: in compiled code instead of the interpreter.
    deoptless: bool = False
    #: Variant cap per (method, deopt bci): beyond this many contexts
    #: the least-recently-dispatched variant is retired (cache entry
    #: evicted), so pathological polymorphism degrades to plain deopt
    #: behavior instead of accumulating code.
    deoptless_max_variants: int = 4
    #: On a compiler error: True = bail out and stay interpreted (what a
    #: production VM does); False = raise (surfaces compiler bugs, the
    #: right default for a research codebase).
    compile_bailout: bool = False
    #: PEA application count (Graal applies it more than once).
    pea_iterations: int = 2
    #: Block-local load/store forwarding after escape analysis.
    read_elimination: bool = True
    #: Dominance-based folding of redundant conditions/guards.
    conditional_elimination: bool = True
    #: Deprecated (ISSUE 9): use ``escape_tier="...+stack"``.
    stack_allocation: Optional[bool] = None
    #: Ablation knobs for the analysis itself.
    pea_virtualize_arrays: bool = True
    pea_fold_checks: bool = True
    #: Deprecated (ISSUE 9): use ``escape_tier="...+summaries"``.
    escape_summaries: Optional[bool] = None
    #: Run the full :class:`repro.verify.GraphVerifier` invariant suite
    #: after every phase of every compilation (SSA dominance, CFG
    #: shape, frame-state completeness, PEA invariants).  Defaults to
    #: the ``REPRO_VERIFY_IR`` environment variable; always on in the
    #: test suite.
    verify_ir: bool = field(default_factory=_default_verify_ir)
    #: How compiled graphs are executed: ``"codegen"`` emits specialized
    #: Python source per graph and ``exec``s it (see
    #: :mod:`repro.runtime.codegen`); ``"plan"`` lowers each graph to
    #: threaded code (pre-linked handler closures, see
    #: :mod:`repro.runtime.plan`); ``"legacy"`` walks the IR with the
    #: original :class:`~repro.runtime.graph_interpreter.GraphInterpreter`.
    #: All three produce bit-identical checksums, allocations, monitors,
    #: deopts and OSR entries; the knob trades speed for simplicity and
    #: exists for differential testing.  Graphs the codegen structurizer
    #: cannot express fall back per-method to ``"plan"``, then to the
    #: GraphInterpreter.
    execution_backend: str = "plan"
    #: Address of a shared compile service (``"host:port"`` or a Unix
    #: socket path, see :mod:`repro.jit.server`).  When set, the VM
    #: does not compile in-process at the tier-up threshold: it submits
    #: an asynchronous compile request and *keeps interpreting* until
    #: the reply arrives, then atomically installs the compiled code
    #: (background tier-up).  If the service dies or the connection
    #: fails, the VM logs once and falls back to in-process
    #: compilation.  Not part of the pipeline fingerprint — the service
    #: produces byte-identical cache payloads to a local compile.
    compile_service: Optional[str] = None
    #: Block on each service compile instead of tiering up in the
    #: background.  Keeps tier-up timing identical to in-process
    #: compilation, which is what the differential fuzzer needs to keep
    #: its engines bit-comparable while still exercising the
    #: client/server path.
    compile_service_wait: bool = False
    #: Record a per-node-kind execution histogram in
    #: :attr:`ExecutionStats.node_kind_executions` (used by ``--profile``).
    collect_node_histogram: bool = False
    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self):
        self._merge_legacy_knobs()

    # -- escape-tier policy -------------------------------------------------

    def _merge_legacy_knobs(self):
        """Fold the deprecated escape booleans into ``escape_tier``."""
        legacy_used = (self.escape_analysis is not None
                       or self.escape_summaries is not None
                       or self.stack_allocation is not None)
        if not legacy_used:
            return
        if not isinstance(self.escape_tier, (str, TierSpec)) or \
                self.escape_tier == "auto":
            raise ValueError(
                "legacy escape knobs (escape_analysis/escape_summaries/"
                "stack_allocation) cannot be combined with a tier "
                "policy; encode the choice in the policy instead")
        spec = TierSpec.parse(self.escape_tier)
        if self.escape_analysis is not None:
            _warn_deprecated(
                "escape_analysis",
                f'"{_KIND_TO_BASE[self.escape_analysis]}"')
            spec = TierSpec(_KIND_TO_BASE[self.escape_analysis],
                            spec.summaries, spec.stack_analysis)
        if self.escape_summaries is not None:
            _warn_deprecated("escape_summaries",
                             f'"{spec.base}+summaries"')
            spec = TierSpec(spec.base, bool(self.escape_summaries),
                            spec.stack_analysis)
        if self.stack_allocation is not None:
            _warn_deprecated("stack_allocation", f'"{spec.base}+stack"')
            stack = "equi" if self.stack_allocation else None
            spec = TierSpec(spec.base, spec.summaries, stack)
        self.escape_tier = spec.token()
        # Keep the legacy mirrors consistent for anything that still
        # reads them (they are no longer consulted by the compiler).
        self.escape_analysis = _BASE_TO_KIND.get(spec.base)
        self.escape_summaries = spec.summaries
        self.stack_allocation = spec.stack_analysis is not None

    def tier_policy(self) -> TierPolicy:
        """The per-method policy behind ``escape_tier``."""
        tier = self.escape_tier
        if tier == "auto":
            return AUTO_TIER_POLICY
        if isinstance(tier, TierSpec):
            spec = tier
            return lambda request: spec
        if isinstance(tier, str):
            spec = TierSpec.parse(tier)
            return lambda request: spec
        if callable(tier):
            return tier
        raise ValueError(f"invalid escape_tier {tier!r}")

    def resolve_tier(self, method_name: str, method_size: int,
                     hotness: int, queue_depth: int = 0) -> TierSpec:
        """The tier one concrete compilation runs under."""
        request = TierRequest(method_name=method_name,
                              method_size=method_size, hotness=hotness,
                              queue_depth=queue_depth)
        return TierSpec.parse(self.tier_policy()(request))

    def tier_descriptor(self):
        """Stable, hashable description of the tier *policy* for the
        pipeline fingerprint.  Per-method resolutions additionally key
        the compilation cache with the resolved token, so two policies
        sharing a descriptor could only cross-contaminate if they also
        resolved identically — in which case the artifacts coincide.
        """
        tier = self.escape_tier
        if isinstance(tier, TierSpec):
            return tier.token()
        if isinstance(tier, str):
            if tier == "auto":
                return AUTO_TIER_POLICY.fingerprint()
            return TierSpec.parse(tier).token()
        fingerprint = getattr(tier, "fingerprint", None)
        if callable(fingerprint):
            value = fingerprint()
            return value if isinstance(value, str) else tuple(value)
        return f"{getattr(tier, '__module__', '?')}." \
               f"{getattr(tier, '__qualname__', repr(tier))}"

    def is_static_tier(self) -> bool:
        """True when every method compiles under the same tier."""
        return isinstance(self.escape_tier, TierSpec) or (
            isinstance(self.escape_tier, str)
            and self.escape_tier != "auto")

    def static_tier_spec(self) -> Optional[TierSpec]:
        if not self.is_static_tier():
            return None
        return TierSpec.parse(self.escape_tier)

    # -- canned configurations ----------------------------------------------

    @classmethod
    def no_ea(cls, **kwargs) -> "CompilerConfig":
        kwargs.setdefault("escape_tier", "none")
        return cls(**kwargs)

    @classmethod
    def equi_escape(cls, **kwargs) -> "CompilerConfig":
        kwargs.setdefault("escape_tier", "equi")
        return cls(**kwargs)

    @classmethod
    def conngraph(cls, **kwargs) -> "CompilerConfig":
        kwargs.setdefault("escape_tier", "conngraph")
        return cls(**kwargs)

    @classmethod
    def partial_escape(cls, **kwargs) -> "CompilerConfig":
        kwargs.setdefault("escape_tier", "pea")
        return cls(**kwargs)

    def label(self) -> str:
        tier = self.escape_tier
        if isinstance(tier, TierSpec):
            base = tier.base
        elif isinstance(tier, str):
            if tier == "auto":
                return "tiered EA (auto)"
            base = TierSpec.parse(tier).base
        else:
            return "tiered EA (policy)"
        return {
            "none": "without EA",
            "equi": "equi-escape EA",
            "conngraph": "conn-graph EA",
            "pea": "with PEA",
        }[base]
