"""Compiler/VM configuration — the evaluation's configurations map to
these flags (no EA / equi-escape EA / Partial Escape Analysis)."""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Optional

from ..opt.inlining import InliningPolicy
from ..runtime.costmodel import CostModel


def _default_verify_ir() -> bool:
    """``REPRO_VERIFY_IR=1`` turns the full invariant verifier on by
    default (tests/conftest.py sets it, so it is always on under
    pytest)."""
    return os.environ.get("REPRO_VERIFY_IR", "") == "1"


class EscapeAnalysisKind(enum.Enum):
    NONE = "none"
    EQUI_ESCAPE = "equi-escape"  # flow-insensitive baseline (Section 6.2)
    PARTIAL = "partial"  # the paper's contribution


@dataclass
class CompilerConfig:
    """One VM configuration."""

    escape_analysis: EscapeAnalysisKind = EscapeAnalysisKind.PARTIAL
    inline: bool = True
    inlining_policy: InliningPolicy = field(default_factory=InliningPolicy)
    canonicalize: bool = True
    gvn: bool = True
    #: Invocations before a method is compiled.
    compile_threshold: int = 20
    #: On-stack replacement: tier up at loop backedges, so a hot loop
    #: inside a long-running interpreted method reaches compiled code
    #: mid-method (the second axis of the two-axis tiering policy).
    osr: bool = True
    #: Backedge executions of one (method, loop-header bci) before an
    #: OSR compilation is requested.  Sits above the invocation
    #: threshold because a backedge fires once per iteration, not once
    #: per call.
    osr_threshold: int = 60
    #: Optimistic branch speculation (never-taken branches -> guards).
    #: Profiling only happens while interpreted, so the sample floor must
    #: sit below the compile threshold; bad speculation is repaired by
    #: deopt + invalidation + recompile.
    speculate_branches: bool = True
    speculation_min_samples: int = 16
    #: Profile-guided devirtualization of CHA-polymorphic calls.
    speculate_types: bool = True
    #: Deoptimizations of one method before its code is thrown away and
    #: recompiled without the failed assumption.
    deopt_invalidate_threshold: int = 3
    #: Deoptless dispatched OSR (Flückiger & Krynski 2022): a deopt at
    #: a specializable site (conditional branch / invokevirtual) does
    #: not fall back to the interpreter — the VM derives a dispatch
    #: context from the failing runtime state, compiles a continuation
    #: entering at the deopt bci specialized against that context, and
    #: dispatches among live variants on every later deopt there.
    #: Deopts still count toward ``deopt_invalidate_threshold``, so the
    #: method entry converges to unspeculated code exactly as without
    #: deoptless; the continuations only bridge the re-tiering window
    #: in compiled code instead of the interpreter.
    deoptless: bool = False
    #: Variant cap per (method, deopt bci): beyond this many contexts
    #: the least-recently-dispatched variant is retired (cache entry
    #: evicted), so pathological polymorphism degrades to plain deopt
    #: behavior instead of accumulating code.
    deoptless_max_variants: int = 4
    #: On a compiler error: True = bail out and stay interpreted (what a
    #: production VM does); False = raise (surfaces compiler bugs, the
    #: right default for a research codebase).
    compile_bailout: bool = False
    #: PEA application count (Graal applies it more than once).
    pea_iterations: int = 2
    #: Block-local load/store forwarding after escape analysis.
    read_elimination: bool = True
    #: Dominance-based folding of redundant conditions/guards.
    conditional_elimination: bool = True
    #: Flag surviving non-escaping allocations for stack/zone
    #: allocation (Section 3's other EA consumer).  Off by default so
    #: heap statistics stay comparable with the paper's configurations.
    stack_allocation: bool = False
    #: Ablation knobs for the analysis itself.
    pea_virtualize_arrays: bool = True
    pea_fold_checks: bool = True
    #: Consult interprocedural escape summaries
    #: (:mod:`repro.analysis.summaries`) at Invoke sites: a virtual
    #: object passed to a summarized non-escaping callee is not
    #: materialized (it is passed as a stack-allocated borrow, or as
    #: null when the callee never touches the parameter), and the
    #: stack-allocation sets become summary-aware.  Part of the
    #: compilation-cache pipeline key.
    escape_summaries: bool = False
    #: Run the full :class:`repro.verify.GraphVerifier` invariant suite
    #: after every phase of every compilation (SSA dominance, CFG
    #: shape, frame-state completeness, PEA invariants).  Defaults to
    #: the ``REPRO_VERIFY_IR`` environment variable; always on in the
    #: test suite.
    verify_ir: bool = field(default_factory=_default_verify_ir)
    #: How compiled graphs are executed: ``"codegen"`` emits specialized
    #: Python source per graph and ``exec``s it (see
    #: :mod:`repro.runtime.codegen`); ``"plan"`` lowers each graph to
    #: threaded code (pre-linked handler closures, see
    #: :mod:`repro.runtime.plan`); ``"legacy"`` walks the IR with the
    #: original :class:`~repro.runtime.graph_interpreter.GraphInterpreter`.
    #: All three produce bit-identical checksums, allocations, monitors,
    #: deopts and OSR entries; the knob trades speed for simplicity and
    #: exists for differential testing.  Graphs the codegen structurizer
    #: cannot express fall back per-method to ``"plan"``, then to the
    #: GraphInterpreter.
    execution_backend: str = "plan"
    #: Address of a shared compile service (``"host:port"`` or a Unix
    #: socket path, see :mod:`repro.jit.server`).  When set, the VM
    #: does not compile in-process at the tier-up threshold: it submits
    #: an asynchronous compile request and *keeps interpreting* until
    #: the reply arrives, then atomically installs the compiled code
    #: (background tier-up).  If the service dies or the connection
    #: fails, the VM logs once and falls back to in-process
    #: compilation.  Not part of the pipeline fingerprint — the service
    #: produces byte-identical cache payloads to a local compile.
    compile_service: Optional[str] = None
    #: Block on each service compile instead of tiering up in the
    #: background.  Keeps tier-up timing identical to in-process
    #: compilation, which is what the differential fuzzer needs to keep
    #: its engines bit-comparable while still exercising the
    #: client/server path.
    compile_service_wait: bool = False
    #: Record a per-node-kind execution histogram in
    #: :attr:`ExecutionStats.node_kind_executions` (used by ``--profile``).
    collect_node_histogram: bool = False
    cost_model: CostModel = field(default_factory=CostModel)

    @classmethod
    def no_ea(cls, **kwargs) -> "CompilerConfig":
        return cls(escape_analysis=EscapeAnalysisKind.NONE, **kwargs)

    @classmethod
    def equi_escape(cls, **kwargs) -> "CompilerConfig":
        return cls(escape_analysis=EscapeAnalysisKind.EQUI_ESCAPE,
                   **kwargs)

    @classmethod
    def partial_escape(cls, **kwargs) -> "CompilerConfig":
        return cls(escape_analysis=EscapeAnalysisKind.PARTIAL, **kwargs)

    def label(self) -> str:
        return {
            EscapeAnalysisKind.NONE: "without EA",
            EscapeAnalysisKind.EQUI_ESCAPE: "equi-escape EA",
            EscapeAnalysisKind.PARTIAL: "with PEA",
        }[self.escape_analysis]
