"""VM-side client for the shared compile service.

:class:`ServiceClient` owns one connection to a
:class:`~repro.jit.server.CompileService` and hides the wire protocol
behind four verbs: :meth:`register` the program skeleton once,
:meth:`submit` asynchronous compile requests, :meth:`poll`/
:meth:`wait_any` for replies, and :meth:`evict` to broadcast deopt
invalidations back to the shared cache.

The client is deliberately *not* thread-safe: each VM owns exactly one
client, used from the VM's interpreter loop.  Replies are routed by
request id so control messages (stats, acks) can interleave with
compile replies on the same connection.

Connection failures are surfaced as ordinary ``OSError``/``EOFError``
to the caller; the VM's policy (:meth:`repro.jit.vm.VM._service_lost`)
is to log once and fall back to in-process compilation.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .server import DEFAULT_AUTHKEY, dump_program, parse_address


@dataclass
class CompileReply:
    """One resolved compile request.

    Exactly one of (``blob``, ``error``) is set.  ``qualified`` and
    ``entry_bci`` echo the submission so the VM can route the install
    without keeping its own request table.
    """

    request_id: int
    qualified: str
    entry_bci: Optional[int]
    key: Optional[str] = None
    blob: Optional[bytes] = None
    facts: Optional[Tuple[tuple, ...]] = None
    meta: Optional[dict] = None
    error: Optional[str] = None


class ServiceClient:
    """One VM's connection to a compile service."""

    def __init__(self, address, authkey: bytes = DEFAULT_AUTHKEY):
        from multiprocessing.connection import Client as _connect
        self.address = parse_address(address)
        self._conn = _connect(self.address, authkey=authkey)
        self._ids = itertools.count(1)
        #: request id -> (qualified name, entry bci) for in-flight
        #: compile requests.
        self._pending: Dict[int, Tuple[str, Optional[int]]] = {}
        self._compile_replies: List[CompileReply] = []
        self._stats_replies: Dict[int, dict] = {}
        self._events: List[tuple] = []

    # -- verbs -------------------------------------------------------------

    def register(self, program, timeout: float = 30.0) -> None:
        """Ship the program skeleton; idempotent on the service side."""
        self._conn.send(("register", program.content_fingerprint(),
                         dump_program(program)))
        self._wait_event("registered", timeout)

    def submit(self, program, qualified: str, config,
               profile_snapshot: Optional[dict],
               entry_bci: Optional[int] = None) -> int:
        """Queue an asynchronous compile request; returns its id."""
        rid = next(self._ids)
        self._pending[rid] = (qualified, entry_bci)
        self._conn.send(("compile", rid, program.content_fingerprint(),
                         qualified, entry_bci, config,
                         profile_snapshot))
        return rid

    def poll(self) -> List[CompileReply]:
        """Drain every reply that has already arrived, non-blocking."""
        while self._conn.poll(0):
            self._route(self._conn.recv())
        return self._drain()

    def wait_any(self, timeout: Optional[float] = None
                 ) -> List[CompileReply]:
        """Block until at least one compile reply is available (or the
        timeout passes); returns every reply drained."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._compile_replies:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            if not self._conn.poll(remaining):
                break
            self._route(self._conn.recv())
        return self._drain()

    def evict(self, key: str, facts) -> None:
        """Broadcast a deopt invalidation: drop the cached variant of
        *key* whose speculation facts failed."""
        self._conn.send(("evict", key, tuple(map(tuple, facts))))

    def stats(self, timeout: float = 30.0) -> dict:
        """Fetch the service's counters (see ``ServiceStats``)."""
        rid = next(self._ids)
        self._conn.send(("stats", rid))
        deadline = time.monotonic() + timeout
        while rid not in self._stats_replies:
            remaining = max(0.0, deadline - time.monotonic())
            if not self._conn.poll(remaining):
                raise TimeoutError("no stats reply from compile service")
            self._route(self._conn.recv())
        return self._stats_replies.pop(rid)

    def shutdown_service(self, timeout: float = 30.0) -> None:
        """Ask the service to shut down (acknowledged before it does)."""
        rid = next(self._ids)
        self._conn.send(("shutdown", rid))
        self._wait_event("ok", timeout)

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass

    @property
    def pending(self) -> Dict[int, Tuple[str, Optional[int]]]:
        return dict(self._pending)

    # -- plumbing ----------------------------------------------------------

    def _drain(self) -> List[CompileReply]:
        drained = self._compile_replies
        self._compile_replies = []
        return drained

    def _route(self, message) -> None:
        kind = message[0]
        if kind == "compiled":
            __, rid, key, blob, facts, meta = message
            qualified, entry_bci = self._pending.pop(rid, ("?", None))
            self._compile_replies.append(CompileReply(
                rid, qualified, entry_bci, key=key, blob=blob,
                facts=facts, meta=meta))
        elif kind == "compile-error":
            __, rid, detail = message
            qualified, entry_bci = self._pending.pop(rid, ("?", None))
            self._compile_replies.append(CompileReply(
                rid, qualified, entry_bci, error=detail))
        elif kind == "stats":
            self._stats_replies[message[1]] = message[2]
        else:
            self._events.append(message)

    def _wait_event(self, kind: str, timeout: float) -> tuple:
        deadline = time.monotonic() + timeout
        while True:
            for index, event in enumerate(self._events):
                if event[0] == kind:
                    return self._events.pop(index)
            remaining = max(0.0, deadline - time.monotonic())
            if not self._conn.poll(remaining):
                raise TimeoutError(
                    f"no '{kind}' reply from compile service")
            self._route(self._conn.recv())
