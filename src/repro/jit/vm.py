"""The tiered virtual machine.

Methods start in the bytecode interpreter (collecting invocation and
branch profiles); once a method's invocation count crosses the compile
threshold it is compiled with the configured pipeline and subsequent
calls execute the optimized graph.  Tiering is two-axis: loop backedges
are counted too, and a loop that crosses ``osr_threshold`` while its
method is still interpreted tiers up mid-method through on-stack
replacement (an OSR entry variant of the graph whose entry is the loop
header, seeded from the interpreter frame).  Guards that fail
deoptimize back to the interpreter through
:class:`~repro.runtime.deopt.Deoptimizer`.

Every engine shares one :class:`~repro.bytecode.heap.Heap`, so the
allocation/monitor statistics of Table 1 are configuration-comparable.
"""

from __future__ import annotations

import logging
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from ..bytecode.classfile import JMethod, Program
from ..bytecode.heap import Heap, HeapStats
from ..bytecode.instructions import MethodRef
from ..bytecode.interpreter import NO_OSR, Interpreter, Profile
from ..runtime.codegen import BoundCode, CodegenError
from ..runtime.costmodel import ExecutionStats
from ..runtime.deopt import Deoptimizer
from ..runtime.graph_interpreter import GraphInterpreter
from ..runtime.plan import BoundPlan, PlanError
from .cache import CompilationCache
from .compiler import CompilationResult, Compiler
from .deoptless import (DeoptlessStats, Variant, VariantTable,
                        continuation_entry, derive_context,
                        is_continuation_entry)
from .listeners import VMListener
from .options import CompilerConfig

_MIN_RECURSION_LIMIT = 40_000

#: Ceiling on nested deoptless dispatches (a continuation deopting into
#: a continuation into ...): past it the interpreter bridges, so a
#: pathological guard chain cannot grow the Python stack unboundedly.
_MAX_DISPATCH_DEPTH = 8

_log = logging.getLogger("repro.jit.service")

#: Ceiling on one blocking wait for a compile-service reply; past it
#: the service is declared lost and the VM compiles in-process.
_SERVICE_WAIT_TIMEOUT = 120.0


class VM:
    """One program + one configuration, ready to run."""

    def __init__(self, program: Program, config: CompilerConfig,
                 cache: Optional[CompilationCache] = None,
                 service=None):
        if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
            sys.setrecursionlimit(_MIN_RECURSION_LIMIT)
        self.program = program
        self.config = config
        self.cache = cache
        from ..runtime.gcsim import GCSim
        self.heap = Heap(program,
                         gc=GCSim.from_cost_model(config.cost_model))
        self.heap.gc.on_collection = self._handle_gc
        self.profile = Profile()
        self.interpreter = Interpreter(program, self.heap, self.profile)
        self.interpreter.dispatcher = self.call_method
        self.deoptimizer = Deoptimizer(program, self.heap,
                                       self.interpreter,
                                       notify=self._handle_deopt)
        self.exec_stats = ExecutionStats()
        self.graph_interpreter = GraphInterpreter(
            program, self.heap, self._invoke_callback, self.deoptimizer,
            config.cost_model, self.exec_stats,
            config.collect_node_histogram)
        self.compiler = Compiler(program, config, self.profile, cache)
        self.compiled: Dict[JMethod, CompilationResult] = {}
        #: Threaded-code plans bound to this VM's heap/stats (plan
        #: backend); methods missing here execute via the
        #: GraphInterpreter fallback.
        self._bound_plans: Dict[JMethod, BoundPlan] = {}
        #: Generated-Python functions bound to this VM (codegen
        #: backend); preferred over ``_bound_plans`` when present.
        self._bound_codegen: Dict[JMethod, BoundCode] = {}
        #: Methods that failed to compile (stay interpreted).
        self._uncompilable: Dict[JMethod, str] = {}
        #: On-stack-replacement variants, one per hot loop header.
        self.osr_compiled: Dict[Tuple[JMethod, int],
                                CompilationResult] = {}
        self._osr_plans: Dict[Tuple[JMethod, int], BoundPlan] = {}
        self._osr_codegen: Dict[Tuple[JMethod, int], BoundCode] = {}
        #: Loop headers whose OSR compilation failed (keep interpreting).
        self._osr_uncompilable: Dict[Tuple[JMethod, int], str] = {}
        #: Completed OSR transfers (observability; not a suite metric).
        self.osr_entries = 0
        self._interpreter_steps_counted = 0
        #: GC pause cycles already folded into ``exec_stats.cycles``
        #: (mirror of the interpreter-steps pattern above: the
        #: simulated collector accumulates pauses in its own stats and
        #: the VM syncs the delta in at snapshot points).
        self._gc_pause_cycles_counted = 0
        self.deopt_counts: Dict[JMethod, int] = {}
        self.invalidations = 0
        #: Per-method deopt epoch: bumped on every deopt, compared
        #: against the epoch an OSR variant / continuation was last
        #: validated at, so stale speculative code is re-checked against
        #: the live profile before being re-entered (instead of
        #: deopt-cycling until the invalidate threshold).
        self._deopt_epoch: Dict[JMethod, int] = {}
        #: Epoch each installed OSR variant was last validated at.
        self._osr_epochs: Dict[Tuple[JMethod, int], int] = {}
        #: Deoptless continuation variants, LRU-capped per deopt site.
        self._variants = VariantTable(config.deoptless_max_variants)
        self.deoptless = DeoptlessStats()
        #: Deopt sites whose continuation build failed (plain deopt).
        self._continuation_uncompilable: Dict[Tuple[JMethod, int],
                                              str] = {}
        self._dispatch_depth = 0
        self._listeners: List[VMListener] = []
        if config.osr:
            self.interpreter.osr_handler = self._handle_osr
        if config.deoptless:
            self.deoptimizer.dispatch = self._dispatch_deopt
        #: Compile-service client (background tier-up).  Either injected
        #: (tests, the fleet benchmark) or constructed from
        #: ``config.compile_service``; ``None`` means in-process
        #: compilation — including after a service failure, which is
        #: logged once and demotes the VM to in-process mode for good.
        self._service = service
        #: Methods with a compile request in flight (value: request id).
        self._service_pending: Dict[JMethod, int] = {}
        self._service_pending_osr: Dict[Tuple[JMethod, int], int] = {}
        #: In-flight continuation requests: (method, descriptor) -> id.
        self._service_pending_cont: Dict[Tuple[JMethod, tuple], int] = {}
        #: Fact-validation retries per target (one resubmission with a
        #: fresh profile snapshot, then in-process fallback).
        self._service_retries: Dict[Any, int] = {}
        #: Replies installed / in-process fallbacks (observability).
        self.service_installs = 0
        self.service_fallbacks = 0
        if self._service is None and config.compile_service:
            from .client import ServiceClient
            try:
                self._service = ServiceClient(config.compile_service)
            except Exception as exc:  # noqa: BLE001 - connect refused
                self._service_lost(exc)
        if self._service is not None:
            try:
                self._service.register(program)
            except Exception as exc:  # noqa: BLE001
                self._service_lost(exc)

    # -- listeners --------------------------------------------------------

    def add_listener(self, listener: VMListener) -> VMListener:
        """Register a :class:`~repro.jit.listeners.VMListener`; events
        fire in registration order.  Returns the listener (chaining)."""
        self._listeners.append(listener)
        return listener

    def remove_listener(self, listener: VMListener) -> None:
        self._listeners.remove(listener)

    def _emit(self, event: str, *args) -> None:
        for listener in self._listeners:
            getattr(listener, event)(*args)

    # -- public -----------------------------------------------------------

    def call(self, qualified: str, *args) -> Any:
        """Invoke ``"Class.method"`` with *args* through the tiers."""
        return self.call_method(self.program.method(qualified),
                                list(args))

    def call_method(self, method: JMethod, args: List[Any]) -> Any:
        # The single invocation-counting point: every call — from the
        # host, from interpreted frames (via the interpreter's
        # dispatcher), or from compiled code — lands here and counts
        # exactly once, whichever tier executes it.  Counting anywhere
        # tier-dependent would make tiering decisions depend on which
        # tier the *caller* happened to run in.  _should_compile reads
        # the count before this call is added ("N prior invocations").
        if method.is_native:
            self.profile.record_invocation(method)
            self.exec_stats.cycles += (
                self.config.cost_model.invoke_overhead
                + method.native_cycle_cost)
            return method.native_impl(self.interpreter, args)
        compiled = self.compiled.get(method)
        if compiled is None and self._should_compile(method):
            if self._service is not None:
                compiled = self._service_compile(method)
            else:
                compiled = self._compile(method)
        self.profile.record_invocation(method)
        if compiled is not None:
            return self._execute_compiled(method, compiled, args)
        return self._execute_interpreted(method, args)

    def warm_up(self, qualified: str, args_list) -> None:
        """Run the method repeatedly so it gets profiled and compiled."""
        for args in args_list:
            self.call(qualified, *args)

    def compile_now(self, qualified: str) -> CompilationResult:
        """Force compilation of a method (tests/benchmarks)."""
        method = self.program.method(qualified)
        result = self.compiled.get(method)
        if result is None:
            result = self._compile(method)
            if result is None:
                raise RuntimeError(
                    f"{qualified} failed to compile: "
                    f"{self._uncompilable.get(method)}")
        return result

    def heap_snapshot(self) -> HeapStats:
        return self.heap.stats.copy()

    def gc_snapshot(self):
        """Cumulative :class:`repro.runtime.gcsim.GCStats` copy."""
        return self.heap.gc.stats.copy()

    def cycles_snapshot(self) -> float:
        self._sync_interpreter_cycles()
        self._sync_gc_cycles()
        return self.exec_stats.cycles

    # -- tiers -------------------------------------------------------------------

    def _should_compile(self, method: JMethod) -> bool:
        if method in self._uncompilable or not method.code:
            return False
        return (self.profile.invocation_count(method)
                >= self.config.compile_threshold)

    def _compile(self, method: JMethod) -> Optional[CompilationResult]:
        try:
            result = self.compiler.compile(method)
        except Exception as exc:  # noqa: BLE001 - compile bailout
            self._uncompilable[method] = f"{type(exc).__name__}: {exc}"
            if self.config.compile_bailout:
                return None  # stay interpreted, like a production VM
            raise
        self._install_compiled(method, result)
        return result

    def _install_compiled(self, method: JMethod,
                          result: CompilationResult) -> None:
        """Atomically adopt a method-entry compilation (from the local
        compiler or a compile-service reply): the result and its bound
        lowering are published together, so the next call runs it."""
        self.compiled[method] = result
        if result.codegen is not None:
            try:
                self._bound_codegen[method] = result.codegen.bind(
                    self.heap, self.exec_stats, self._invoke_callback,
                    self.deoptimizer,
                    self.config.collect_node_histogram)
            except CodegenError:
                self._bound_codegen.pop(method, None)
        if result.plan is not None:
            try:
                self._bound_plans[method] = result.plan.bind(
                    self.heap, self.exec_stats, self._invoke_callback,
                    self.deoptimizer,
                    self.config.collect_node_histogram)
            except PlanError:
                self._bound_plans.pop(method, None)
        if result.cache_hit:
            self._emit("on_cache_hit", method, result.cache_entry)
        self._emit("on_compile", method, result)

    # -- on-stack replacement ---------------------------------------------

    def _handle_osr(self, method: JMethod, bci: int,
                    locals_: List[Any]) -> Any:
        """Interpreter backedge hook: count the backedge, and past the
        OSR threshold transfer control into the compiled OSR variant.
        Returns :data:`~repro.bytecode.interpreter.NO_OSR` to keep
        interpreting, else the method's result."""
        count = self.profile.record_backedge(method, bci)
        key = (method, bci)
        compiled = self.osr_compiled.get(key)
        if compiled is not None:
            compiled = self._validated_osr(key, compiled)
        if compiled is None and self._service is not None and \
                key in self._service_pending_osr:
            # A reply may have arrived since the last backedge.
            self._service_drain()
            compiled = self.osr_compiled.get(key)
        if compiled is None:
            if count < self.config.osr_threshold or \
                    key in self._osr_uncompilable or \
                    method.is_synchronized:
                return NO_OSR
            if self._service is not None:
                compiled = self._service_compile_osr(method, bci)
            else:
                compiled = self._compile_osr(method, bci)
            if compiled is None:
                return NO_OSR
        self.osr_entries += 1
        self.profile.record_osr_entry(method, bci)
        args = [locals_[slot]
                for slot in compiled.graph.osr_local_slots]
        code = self._osr_codegen.get(key)
        if code is not None:
            return code.execute(args)
        bound = self._osr_plans.get(key)
        if bound is not None:
            return bound.execute(args)
        return self.graph_interpreter.execute(compiled.graph, args)

    def _validated_osr(self, key: Tuple[JMethod, int],
                       compiled: CompilationResult
                       ) -> Optional[CompilationResult]:
        """Re-validate an installed OSR variant after a deopt.

        Without this, a deopt *inside* OSR'd loop code left the stale
        variant installed: the interpreter's very next backedge
        re-entered it, it deopted again, and the loop paid a
        remat+deopt cycle per iteration until the invalidate threshold
        tripped.  Comparing the method's deopt epoch costs two dict
        reads per backedge; when it moved, the variant's recorded facts
        are checked against the live profile — still valid refreshes
        the epoch, falsified retires the variant immediately so the
        compile path below rebuilds it against the updated profile.
        The backedge counter is cumulative (never reset), so the
        re-tiering starts hot: the rebuild happens on this very
        backedge, not after a second warm-up."""
        method = key[0]
        epoch = self._deopt_epoch.get(method, 0)
        if self._osr_epochs.get(key, epoch) == epoch:
            return compiled
        from .cache import validate_facts
        if validate_facts(compiled.facts, self.program, self.profile):
            self._osr_epochs[key] = epoch
            return compiled
        self.osr_compiled.pop(key, None)
        self._osr_plans.pop(key, None)
        self._osr_codegen.pop(key, None)
        self._osr_epochs.pop(key, None)
        self._evict_results([compiled])
        return None

    def _compile_osr(self, method: JMethod,
                     bci: int) -> Optional[CompilationResult]:
        from ..frontend.graph_builder import GraphBuildError
        key = (method, bci)
        try:
            result = self.compiler.compile(method, osr_bci=bci)
        except GraphBuildError as exc:
            # An un-OSR-able loop shape (e.g. the header of an inner
            # loop reached from an OSR entry) is normal: record it and
            # keep interpreting this loop.
            self._osr_uncompilable[key] = f"{type(exc).__name__}: {exc}"
            return None
        except Exception as exc:  # noqa: BLE001 - compile bailout
            self._osr_uncompilable[key] = f"{type(exc).__name__}: {exc}"
            if self.config.compile_bailout:
                return None
            raise
        self._install_osr(key, result)
        return result

    def _install_osr(self, key: Tuple[JMethod, int],
                     result: CompilationResult) -> None:
        method, bci = key
        self.osr_compiled[key] = result
        self._osr_epochs[key] = self._deopt_epoch.get(method, 0)
        if result.codegen is not None:
            try:
                self._osr_codegen[key] = result.codegen.bind(
                    self.heap, self.exec_stats, self._invoke_callback,
                    self.deoptimizer,
                    self.config.collect_node_histogram)
            except CodegenError:
                self._osr_codegen.pop(key, None)
        if result.plan is not None:
            try:
                self._osr_plans[key] = result.plan.bind(
                    self.heap, self.exec_stats, self._invoke_callback,
                    self.deoptimizer,
                    self.config.collect_node_histogram)
            except PlanError:
                self._osr_plans.pop(key, None)
        if result.cache_hit:
            self._emit("on_cache_hit", method, result.cache_entry)
        self._emit("on_osr_compile", method, bci, result)

    # -- deoptless dispatch ------------------------------------------------

    def _dispatch_deopt(self, frame_state, locals_: List[Any],
                        stack: List[Any]) -> Tuple[bool, Any]:
        """Deoptimizer hook (``config.deoptless``): instead of handing
        the innermost rematerialized frame to the interpreter, derive
        the dispatch context from the failing state and transfer into a
        continuation specialized for it — compiling one on first miss.
        Returns ``(True, result)`` on a dispatch hit, ``(False, None)``
        to fall back to the plain interpreter bridge."""
        method = frame_state.method
        if method.is_synchronized or not method.code or \
                self._dispatch_depth >= _MAX_DISPATCH_DEPTH:
            return False, None
        bci = frame_state.bci
        context = derive_context(method, bci, locals_, stack)
        if context is None:
            return False, None
        # Record what the interpreter bridge would have recorded at the
        # deopt site.  The continuation executes compiled code, so
        # without this the profile never learns the flipped behavior
        # and every post-invalidation recompile re-speculates the same
        # falsified direction — deoptless would bridge the deopt cycle
        # *forever* instead of until the unspeculated recompile.
        kind, site, observed = context
        if kind == "branch":
            self.profile.record_branch(method, site, observed)
        elif kind == "receiver":
            self.profile.record_receiver(method, site, observed)
        variant = self._variants.lookup(method, bci, context)
        if variant is not None:
            variant = self._validated_variant(method, bci, variant)
        if variant is None:
            variant = self._compile_continuation(method, bci,
                                                 len(stack), context)
        if variant is None:
            self.deoptless.dispatch_misses += 1
            self._emit("on_dispatch", method, bci, context, False)
            return False, None
        self.deoptless.dispatches += 1
        self._emit("on_dispatch", method, bci, context, True)
        args = [locals_[slot]
                for slot in variant.result.graph.osr_local_slots]
        args.extend(stack)
        self._dispatch_depth += 1
        try:
            return True, variant.entry(args)
        finally:
            self._dispatch_depth -= 1

    def _validated_variant(self, method: JMethod, bci: int,
                           variant: Variant) -> Optional[Variant]:
        """Epoch-check a continuation variant's non-context facts
        against the live profile (same discipline as
        :meth:`_validated_osr`); stale variants are retired."""
        epoch = self._deopt_epoch.get(method, 0)
        if variant.epoch == epoch or not variant.facts:
            return variant
        from .cache import validate_facts
        if validate_facts(variant.facts, self.program, self.profile):
            variant.epoch = epoch
            return variant
        self._variants.remove(method, bci, variant.context)
        self._retire_variant(variant)
        return None

    def _compile_continuation(self, method: JMethod, bci: int,
                              stack_depth: int,
                              context) -> Optional[Variant]:
        key = (method, bci)
        if key in self._continuation_uncompilable:
            return None
        descriptor = continuation_entry(bci, stack_depth, context)
        if self._service is not None:
            return self._service_compile_continuation(method, descriptor)
        return self._compile_continuation_local(method, descriptor)

    def _compile_continuation_local(self, method: JMethod,
                                    descriptor: tuple
                                    ) -> Optional[Variant]:
        from ..frontend.graph_builder import GraphBuildError
        key = (method, descriptor[1])
        try:
            result = self.compiler.compile(method, osr_bci=descriptor)
        except GraphBuildError as exc:
            # Structurally un-enterable deopt site (e.g. mid-loop entry
            # whose backedge would target an unmaterialized header):
            # normal — this site keeps plain deopt semantics.
            self._continuation_uncompilable[key] = \
                f"{type(exc).__name__}: {exc}"
            return None
        except Exception as exc:  # noqa: BLE001 - compile bailout
            self._continuation_uncompilable[key] = \
                f"{type(exc).__name__}: {exc}"
            if self.config.compile_bailout:
                return None
            raise
        return self._install_continuation(method, descriptor, result)

    def _install_continuation(self, method: JMethod, descriptor: tuple,
                              result: CompilationResult) -> Variant:
        __, bci, __, context = descriptor
        entry = None
        if result.codegen is not None:
            try:
                entry = result.codegen.bind(
                    self.heap, self.exec_stats, self._invoke_callback,
                    self.deoptimizer,
                    self.config.collect_node_histogram).execute
            except CodegenError:
                entry = None
        if entry is None and result.plan is not None:
            try:
                entry = result.plan.bind(
                    self.heap, self.exec_stats, self._invoke_callback,
                    self.deoptimizer,
                    self.config.collect_node_histogram).execute
            except PlanError:
                entry = None
        if entry is None:
            graph = result.graph
            entry = (lambda args:
                     self.graph_interpreter.execute(graph, args))
        variant = Variant(context, result, entry,
                          facts=tuple(result.facts),
                          epoch=self._deopt_epoch.get(method, 0))
        retired = self._variants.install(method, bci, variant)
        if retired is not None:
            self._retire_variant(retired)
        self.deoptless.continuation_compiles += 1
        if result.cache_hit:
            self._emit("on_cache_hit", method, result.cache_entry)
        self._emit("on_continuation_compile", method, bci, context,
                   result)
        return variant

    def _retire_variant(self, variant: Variant) -> None:
        """Drop a retired/stale continuation's cache entry so it cannot
        be re-served (locally or fleet-wide)."""
        self.deoptless.retirements += 1
        self._evict_results([variant.result])

    # -- compile service (background tier-up) ------------------------------

    def _service_compile(self, method: JMethod
                         ) -> Optional[CompilationResult]:
        """Tier up through the compile service: install any replies
        that already arrived, and if *method* is still interpreted,
        make sure a request is in flight — then keep interpreting (or
        block for the reply under ``compile_service_wait``)."""
        self._service_drain()
        if self._service is None:  # lost during drain
            return self._compile(method) \
                if self._should_compile(method) else None
        compiled = self.compiled.get(method)
        if compiled is not None:
            return compiled
        if method in self._uncompilable:
            return None
        if method not in self._service_pending:
            rid = self._service_submit(method, None)
            if rid is None:  # lost at submit
                return self._compile(method)
            self._service_pending[method] = rid
        if self.config.compile_service_wait:
            self._service_wait_for(method=method)
            return self.compiled.get(method)
        return None

    def _service_compile_osr(self, method: JMethod, bci: int
                             ) -> Optional[CompilationResult]:
        self._service_drain()
        if self._service is None:
            return self._compile_osr(method, bci)
        key = (method, bci)
        compiled = self.osr_compiled.get(key)
        if compiled is not None:
            return compiled
        if key in self._osr_uncompilable:
            return None
        if key not in self._service_pending_osr:
            rid = self._service_submit(method, bci)
            if rid is None:
                return self._compile_osr(method, bci)
            self._service_pending_osr[key] = rid
        if self.config.compile_service_wait:
            self._service_wait_for(osr_key=key)
            return self.osr_compiled.get(key)
        return None

    def _service_compile_continuation(self, method: JMethod,
                                      descriptor: tuple
                                      ) -> Optional[Variant]:
        """Continuation compile through the service: same background
        shape as :meth:`_service_compile_osr` — the interpreter bridges
        the deopt that missed, and the variant installs when the reply
        drains.  The descriptor tuple rides the ``entry_bci`` wire
        field (pickle framing keeps it intact) and keys the shared
        cache, so one fleet member's continuation serves the others."""
        self._service_drain()
        if self._service is None:  # lost during drain
            return self._compile_continuation_local(method, descriptor)
        bci, context = descriptor[1], descriptor[3]
        variant = self._variants.lookup(method, bci, context)
        if variant is not None:  # the drain just installed it
            return variant
        if (method, bci) in self._continuation_uncompilable:
            return None
        key = (method, descriptor)
        if key not in self._service_pending_cont:
            rid = self._service_submit(method, descriptor)
            if rid is None:  # lost at submit
                return self._compile_continuation_local(method,
                                                        descriptor)
            self._service_pending_cont[key] = rid
        if self.config.compile_service_wait:
            self._service_wait_for(cont_key=key)
            return self._variants.lookup(method, bci, context)
        return None

    def _service_submit(self, method: JMethod,
                        entry_bci) -> Optional[int]:
        try:
            return self._service.submit(
                self.program, method.qualified_name, self.config,
                self.profile.snapshot(), entry_bci)
        except Exception as exc:  # noqa: BLE001 - connection failure
            self._service_lost(exc)
            return None

    def _service_drain(self) -> None:
        """Install every service reply that has already arrived."""
        if self._service is None:
            return
        try:
            replies = self._service.poll()
        except Exception as exc:  # noqa: BLE001
            self._service_lost(exc)
            return
        for reply in replies:
            self._service_install(reply)

    def _service_wait_for(self, method: Optional[JMethod] = None,
                          osr_key: Optional[Tuple[JMethod, int]] = None,
                          cont_key: Optional[Tuple[JMethod,
                                                   tuple]] = None,
                          timeout: float = _SERVICE_WAIT_TIMEOUT
                          ) -> None:
        """Block until the request for one target resolves (installed,
        marked uncompilable, or the service is lost — in which case the
        target is compiled in-process so the caller always makes
        progress)."""
        def pending() -> bool:
            if method is not None:
                return method in self._service_pending
            if osr_key is not None:
                return osr_key in self._service_pending_osr
            return cont_key in self._service_pending_cont
        deadline = time.monotonic() + timeout
        while self._service is not None and pending():
            try:
                replies = self._service.wait_any(
                    timeout=max(0.05, deadline - time.monotonic()))
            except Exception as exc:  # noqa: BLE001
                self._service_lost(exc)
                break
            if not replies and time.monotonic() >= deadline:
                self._service_lost(TimeoutError(
                    "compile service reply timed out"))
                break
            for reply in replies:
                self._service_install(reply)
        if method is not None:
            if method not in self.compiled and \
                    method not in self._uncompilable:
                self.service_fallbacks += 1
                self._compile(method)
        elif osr_key is not None:
            if osr_key not in self.osr_compiled and \
                    osr_key not in self._osr_uncompilable:
                self.service_fallbacks += 1
                self._compile_osr(*osr_key)
        elif cont_key is not None:
            cmethod, descriptor = cont_key
            if self._variants.lookup(cmethod, descriptor[1],
                                     descriptor[3]) is None and \
                    (cmethod, descriptor[1]) not in \
                    self._continuation_uncompilable:
                self.service_fallbacks += 1
                self._compile_continuation_local(cmethod, descriptor)

    def finish_pending_compiles(
            self, timeout: float = _SERVICE_WAIT_TIMEOUT) -> None:
        """Drain every in-flight compile request and install the
        replies — the deterministic barrier the benchmark harness puts
        between warm-up and the measured window, so background tier-up
        cannot move compile points into (or out of) the measurement.
        Targets still unresolved after a service loss are compiled
        in-process.  No-op without a service."""
        targets = list(self._service_pending)
        osr_targets = list(self._service_pending_osr)
        cont_targets = list(self._service_pending_cont)
        deadline = time.monotonic() + timeout
        while self._service is not None and \
                (self._service_pending or self._service_pending_osr
                 or self._service_pending_cont):
            try:
                replies = self._service.wait_any(
                    timeout=max(0.05, deadline - time.monotonic()))
            except Exception as exc:  # noqa: BLE001
                self._service_lost(exc)
                break
            if not replies and time.monotonic() >= deadline:
                self._service_lost(TimeoutError(
                    "compile service reply timed out"))
                break
            for reply in replies:
                self._service_install(reply)
        for method in targets:
            if method not in self.compiled and \
                    method not in self._uncompilable and \
                    self._should_compile(method):
                self.service_fallbacks += 1
                self._compile(method)
        for key in osr_targets:
            if key not in self.osr_compiled and \
                    key not in self._osr_uncompilable:
                self.service_fallbacks += 1
                self._compile_osr(*key)
        for cmethod, descriptor in cont_targets:
            if self._variants.lookup(cmethod, descriptor[1],
                                     descriptor[3]) is None and \
                    (cmethod, descriptor[1]) not in \
                    self._continuation_uncompilable:
                self.service_fallbacks += 1
                self._compile_continuation_local(cmethod, descriptor)

    def _service_install(self, reply) -> None:
        """Atomically install one compile-service reply.

        The reply's speculation facts are re-validated against the
        *live* profile first: an invalidation that raced the
        compilation (the deopt changed a branch decision after the
        snapshot was taken) fails validation here, the stale payload is
        discarded, and the request is resubmitted once with a fresh
        snapshot — after which the VM compiles in-process, so progress
        is guaranteed."""
        from ..jit.cache import validate_facts
        try:
            method = self.program.method(reply.qualified)
        except Exception:  # noqa: BLE001 - unknown method in reply
            return
        if is_continuation_entry(reply.entry_bci):
            self._service_install_continuation(method, reply)
            return
        osr = reply.entry_bci is not None
        key = (method, reply.entry_bci) if osr else method
        if osr:
            self._service_pending_osr.pop(key, None)
        else:
            self._service_pending.pop(method, None)
        if reply.error is not None:
            self._service_retries.pop(key, None)
            if reply.error == "compilation not cacheable":
                # The method compiled fine but its graph is not
                # transportable (unpicklable payload).  Compile it
                # locally — same policy as a cache that declines to
                # store.
                self.service_fallbacks += 1
                if osr:
                    self._compile_osr(method, reply.entry_bci)
                else:
                    self._compile(method)
                return
            detail = f"service: {reply.error}"
            if osr:
                # GraphBuildError on an un-OSR-able loop shape is
                # normal (mirrors _compile_osr); anything else honors
                # compile_bailout.
                self._osr_uncompilable[key] = detail
                if not reply.error.startswith("GraphBuildError") and \
                        not self.config.compile_bailout:
                    raise RuntimeError(
                        f"{method.qualified_name} failed to compile "
                        f"via service: {reply.error}")
            else:
                self._uncompilable[method] = detail
                if not self.config.compile_bailout:
                    raise RuntimeError(
                        f"{method.qualified_name} failed to compile "
                        f"via service: {reply.error}")
            return
        facts = tuple(map(tuple, reply.facts))
        if not validate_facts(facts, self.program, self.profile):
            retries = self._service_retries.get(key, 0)
            if retries < 1 and self._service is not None:
                self._service_retries[key] = retries + 1
                rid = self._service_submit(method, reply.entry_bci)
                if rid is not None:
                    if osr:
                        self._service_pending_osr[key] = rid
                    else:
                        self._service_pending[method] = rid
                    return
            # Second stale reply (or no service): the profile is
            # moving faster than the round trip; compile locally.
            self._service_retries.pop(key, None)
            self.service_fallbacks += 1
            if osr:
                self._compile_osr(method, reply.entry_bci)
            else:
                self._compile(method)
            return
        self._service_retries.pop(key, None)
        try:
            result = self.compiler.result_from_service(
                method, reply.blob, facts, reply.key, reply.meta,
                osr_bci=reply.entry_bci)
        except Exception:  # noqa: BLE001 - undecodable payload
            self.service_fallbacks += 1
            if osr:
                self._compile_osr(method, reply.entry_bci)
            else:
                self._compile(method)
            return
        self.service_installs += 1
        if osr:
            self._install_osr(key, result)
        else:
            self._install_compiled(method, result)

    def _service_install_continuation(self, method: JMethod,
                                      reply) -> None:
        """Install one continuation reply (same validate/retry/fallback
        ladder as :meth:`_service_install`, ending in
        :meth:`_install_continuation`)."""
        from ..jit.cache import validate_facts
        descriptor = reply.entry_bci
        key = (method, descriptor)
        site = (method, descriptor[1])
        self._service_pending_cont.pop(key, None)
        if reply.error is not None:
            self._service_retries.pop(key, None)
            if reply.error == "compilation not cacheable":
                self.service_fallbacks += 1
                self._compile_continuation_local(method, descriptor)
                return
            # GraphBuildError on a structurally un-enterable deopt site
            # is normal (mirrors _compile_continuation_local); anything
            # else honors compile_bailout.
            self._continuation_uncompilable[site] = \
                f"service: {reply.error}"
            if not reply.error.startswith("GraphBuildError") and \
                    not self.config.compile_bailout:
                raise RuntimeError(
                    f"{method.qualified_name} continuation at bci "
                    f"{descriptor[1]} failed to compile via service: "
                    f"{reply.error}")
            return
        facts = tuple(map(tuple, reply.facts))
        if not validate_facts(facts, self.program, self.profile):
            retries = self._service_retries.get(key, 0)
            if retries < 1 and self._service is not None:
                self._service_retries[key] = retries + 1
                rid = self._service_submit(method, descriptor)
                if rid is not None:
                    self._service_pending_cont[key] = rid
                    return
            self._service_retries.pop(key, None)
            self.service_fallbacks += 1
            self._compile_continuation_local(method, descriptor)
            return
        self._service_retries.pop(key, None)
        try:
            result = self.compiler.result_from_service(
                method, reply.blob, facts, reply.key, reply.meta,
                osr_bci=descriptor)
        except Exception:  # noqa: BLE001 - undecodable payload
            self.service_fallbacks += 1
            self._compile_continuation_local(method, descriptor)
            return
        self.service_installs += 1
        self._install_continuation(method, descriptor, result)

    def _service_lost(self, exc: BaseException) -> None:
        """Demote to in-process compilation, once, with one log line —
        the service is an accelerator, never a correctness
        dependency."""
        service, self._service = self._service, None
        if service is not None:
            try:
                service.close()
            except Exception:  # noqa: BLE001
                pass
        self._service_pending.clear()
        self._service_pending_osr.clear()
        self._service_pending_cont.clear()
        self._service_retries.clear()
        _log.warning(
            "compile service unavailable (%s: %s); falling back to "
            "in-process compilation", type(exc).__name__, exc)

    def _execute_compiled(self, method: JMethod,
                          compiled: CompilationResult,
                          args: List[Any]) -> Any:
        code = self._bound_codegen.get(method)
        if code is not None:
            return code.execute(args)
        bound = self._bound_plans.get(method)
        if bound is not None:
            return bound.execute(args)
        return self.graph_interpreter.execute(compiled.graph, args)

    def _execute_interpreted(self, method: JMethod,
                             args: List[Any]) -> Any:
        self.exec_stats.interpreted_invocations += 1
        try:
            return self.interpreter.invoke(method, args)
        finally:
            self._sync_interpreter_cycles()

    def _sync_interpreter_cycles(self):
        steps = self.interpreter.stats.steps
        new_steps = steps - self._interpreter_steps_counted
        if new_steps:
            self._interpreter_steps_counted = steps
            self.exec_stats.interpreter_steps += new_steps
            self.exec_stats.cycles += (
                new_steps * self.config.cost_model.interpreter_step)

    def _sync_gc_cycles(self):
        """Fold minor-collection pauses accumulated by the simulated
        collector into the cycle total (single integer-valued addition
        per sync point, so the float total stays deterministic across
        backends)."""
        pauses = self.heap.gc.stats.pause_cycles
        new_pauses = pauses - self._gc_pause_cycles_counted
        if new_pauses:
            self._gc_pause_cycles_counted = pauses
            self.exec_stats.cycles += new_pauses

    def _handle_gc(self, minor: int, pause_cycles: int,
                   promoted_bytes: int) -> None:
        self._emit("on_gc", minor, pause_cycles, promoted_bytes)

    def _handle_deopt(self, root_method: JMethod, state) -> None:
        """Invalidate code that keeps deoptimizing; the next compilation
        sees the updated profile and drops the failed speculation."""
        self._emit("on_deopt", root_method, state)
        self._deopt_epoch[root_method] = \
            self._deopt_epoch.get(root_method, 0) + 1
        count = self.deopt_counts.get(root_method, 0) + 1
        self.deopt_counts[root_method] = count
        has_code = (root_method in self.compiled
                    or any(m is root_method for m, __ in
                           self.osr_compiled))
        if count >= self.config.deopt_invalidate_threshold and has_code:
            self._invalidate(root_method, "deopt-threshold")

    def _invalidate(self, method: JMethod, reason: str) -> None:
        """Throw away *method*'s compiled code — the normal entry and
        every OSR variant (they embed the same failed speculation) —
        and evict the backing cache entries."""
        invalidated = []
        result = self.compiled.pop(method, None)
        if result is not None:
            invalidated.append(result)
        self._bound_plans.pop(method, None)
        self._bound_codegen.pop(method, None)
        for key in [k for k in self.osr_compiled if k[0] is method]:
            invalidated.append(self.osr_compiled.pop(key))
            self._osr_plans.pop(key, None)
            self._osr_codegen.pop(key, None)
            self._osr_uncompilable.pop(key, None)
            self._osr_epochs.pop(key, None)
        self.deopt_counts[method] = 0
        self.invalidations += 1
        # Deoptless continuation variants survive invalidation: their
        # specialization is context-keyed (an assumption, not a profile
        # fact), so the falsified speculation that killed the method
        # entry is exactly what they exist to bridge.  Their *other*
        # facts are epoch-revalidated at the next dispatch.
        self._evict_results(invalidated)
        self._emit("on_invalidate", method, reason)

    def _evict_results(self, invalidated: List[CompilationResult]) -> None:
        if self.cache is not None:
            # The post-deopt profile changes the speculation facts, so
            # the cached entries could never validate again — and a
            # *different* VM whose profile still matches would re-import
            # the failed speculation.  Evict them.
            for result in invalidated:
                self.cache.evict(result.cache_entry)
        if self._service is not None:
            # Broadcast the same evictions to the shared service cache,
            # so the fleet cannot be re-served the failed speculation.
            try:
                for result in invalidated:
                    if result.cache_entry is not None:
                        self._service.evict(result.cache_entry.key,
                                            result.cache_entry.facts)
            except Exception as exc:  # noqa: BLE001
                self._service_lost(exc)

    def _invoke_callback(self, kind: str, ref: MethodRef,
                         args: List[Any]) -> Any:
        if kind == "virtual":
            receiver = args[0]
            callee = self.program.resolve_virtual(receiver.class_name,
                                                  ref.method_name)
        else:
            callee = self.program.resolve_method(ref.class_name,
                                                 ref.method_name)
        return self.call_method(callee, args)
