"""The tiered virtual machine.

Methods start in the bytecode interpreter (collecting invocation and
branch profiles); once a method's invocation count crosses the compile
threshold it is compiled with the configured pipeline and subsequent
calls execute the optimized graph.  Guards that fail deoptimize back to
the interpreter through :class:`~repro.runtime.deopt.Deoptimizer`.

Every engine shares one :class:`~repro.bytecode.heap.Heap`, so the
allocation/monitor statistics of Table 1 are configuration-comparable.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List, Optional

from ..bytecode.classfile import JMethod, Program
from ..bytecode.heap import Heap, HeapStats
from ..bytecode.instructions import MethodRef
from ..bytecode.interpreter import Interpreter, Profile
from ..runtime.costmodel import ExecutionStats
from ..runtime.deopt import Deoptimizer
from ..runtime.graph_interpreter import GraphInterpreter
from ..runtime.plan import BoundPlan, PlanError
from .cache import CompilationCache
from .compiler import CompilationResult, Compiler
from .options import CompilerConfig

_MIN_RECURSION_LIMIT = 40_000


class VM:
    """One program + one configuration, ready to run."""

    def __init__(self, program: Program, config: CompilerConfig,
                 cache: Optional[CompilationCache] = None):
        if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
            sys.setrecursionlimit(_MIN_RECURSION_LIMIT)
        self.program = program
        self.config = config
        self.cache = cache
        self.heap = Heap(program)
        self.profile = Profile()
        self.interpreter = Interpreter(program, self.heap, self.profile)
        self.interpreter.dispatcher = self.call_method
        self.deoptimizer = Deoptimizer(program, self.heap,
                                       self.interpreter)
        self.exec_stats = ExecutionStats()
        self.graph_interpreter = GraphInterpreter(
            program, self.heap, self._invoke_callback, self.deoptimizer,
            config.cost_model, self.exec_stats,
            config.collect_node_histogram)
        self.compiler = Compiler(program, config, self.profile, cache)
        self.compiled: Dict[JMethod, CompilationResult] = {}
        #: Threaded-code plans bound to this VM's heap/stats (plan
        #: backend); methods missing here execute via the
        #: GraphInterpreter fallback.
        self._bound_plans: Dict[JMethod, BoundPlan] = {}
        #: Methods that failed to compile (stay interpreted).
        self._uncompilable: Dict[JMethod, str] = {}
        self._interpreter_steps_counted = 0
        self.deopt_counts: Dict[JMethod, int] = {}
        self.invalidations = 0
        self.deoptimizer.on_deopt = self._handle_deopt

    # -- public -----------------------------------------------------------

    def call(self, qualified: str, *args) -> Any:
        """Invoke ``"Class.method"`` with *args* through the tiers."""
        return self.call_method(self.program.method(qualified),
                                list(args))

    def call_method(self, method: JMethod, args: List[Any]) -> Any:
        if method.is_native:
            self.exec_stats.cycles += (
                self.config.cost_model.invoke_overhead
                + method.native_cycle_cost)
            return method.native_impl(self.interpreter, args)
        compiled = self.compiled.get(method)
        if compiled is None and self._should_compile(method):
            compiled = self._compile(method)
        if compiled is not None:
            return self._execute_compiled(method, compiled, args)
        return self._execute_interpreted(method, args)

    def warm_up(self, qualified: str, args_list) -> None:
        """Run the method repeatedly so it gets profiled and compiled."""
        for args in args_list:
            self.call(qualified, *args)

    def compile_now(self, qualified: str) -> CompilationResult:
        """Force compilation of a method (tests/benchmarks)."""
        method = self.program.method(qualified)
        result = self.compiled.get(method)
        if result is None:
            result = self._compile(method)
            if result is None:
                raise RuntimeError(
                    f"{qualified} failed to compile: "
                    f"{self._uncompilable.get(method)}")
        return result

    def heap_snapshot(self) -> HeapStats:
        return self.heap.stats.copy()

    def cycles_snapshot(self) -> float:
        self._sync_interpreter_cycles()
        return self.exec_stats.cycles

    # -- tiers -------------------------------------------------------------------

    def _should_compile(self, method: JMethod) -> bool:
        if method in self._uncompilable or not method.code:
            return False
        return (self.profile.invocation_count(method)
                >= self.config.compile_threshold)

    def _compile(self, method: JMethod) -> Optional[CompilationResult]:
        try:
            result = self.compiler.compile(method)
        except Exception as exc:  # noqa: BLE001 - compile bailout
            self._uncompilable[method] = f"{type(exc).__name__}: {exc}"
            if self.config.compile_bailout:
                return None  # stay interpreted, like a production VM
            raise
        self.compiled[method] = result
        if result.plan is not None:
            try:
                self._bound_plans[method] = result.plan.bind(
                    self.heap, self.exec_stats, self._invoke_callback,
                    self.deoptimizer,
                    self.config.collect_node_histogram)
            except PlanError:
                self._bound_plans.pop(method, None)
        return result

    def _execute_compiled(self, method: JMethod,
                          compiled: CompilationResult,
                          args: List[Any]) -> Any:
        bound = self._bound_plans.get(method)
        if bound is not None:
            return bound.execute(args)
        return self.graph_interpreter.execute(compiled.graph, args)

    def _execute_interpreted(self, method: JMethod,
                             args: List[Any]) -> Any:
        self.exec_stats.interpreted_invocations += 1
        try:
            return self.interpreter.invoke(method, args)
        finally:
            self._sync_interpreter_cycles()

    def _sync_interpreter_cycles(self):
        steps = self.interpreter.stats.steps
        new_steps = steps - self._interpreter_steps_counted
        if new_steps:
            self._interpreter_steps_counted = steps
            self.exec_stats.interpreter_steps += new_steps
            self.exec_stats.cycles += (
                new_steps * self.config.cost_model.interpreter_step)

    def _handle_deopt(self, root_method: JMethod, state) -> None:
        """Invalidate code that keeps deoptimizing; the next compilation
        sees the updated profile and drops the failed speculation."""
        count = self.deopt_counts.get(root_method, 0) + 1
        self.deopt_counts[root_method] = count
        if count >= self.config.deopt_invalidate_threshold and \
                root_method in self.compiled:
            invalidated = self.compiled.pop(root_method)
            self._bound_plans.pop(root_method, None)
            self.deopt_counts[root_method] = 0
            self.invalidations += 1
            if self.cache is not None:
                # The post-deopt profile changes the speculation facts,
                # so the cached entry could never validate again — and a
                # *different* VM whose profile still matches would
                # re-import the failed speculation.  Evict it.
                self.cache.evict(invalidated.cache_entry)

    def _invoke_callback(self, kind: str, ref: MethodRef,
                         args: List[Any]) -> Any:
        if kind == "virtual":
            receiver = args[0]
            callee = self.program.resolve_virtual(receiver.class_name,
                                                  ref.method_name)
        else:
            callee = self.program.resolve_method(ref.class_name,
                                                 ref.method_name)
        if self.profile is not None:
            self.profile.record_invocation(callee)
        return self.call_method(callee, args)
