"""The tiered virtual machine.

Methods start in the bytecode interpreter (collecting invocation and
branch profiles); once a method's invocation count crosses the compile
threshold it is compiled with the configured pipeline and subsequent
calls execute the optimized graph.  Tiering is two-axis: loop backedges
are counted too, and a loop that crosses ``osr_threshold`` while its
method is still interpreted tiers up mid-method through on-stack
replacement (an OSR entry variant of the graph whose entry is the loop
header, seeded from the interpreter frame).  Guards that fail
deoptimize back to the interpreter through
:class:`~repro.runtime.deopt.Deoptimizer`.

Every engine shares one :class:`~repro.bytecode.heap.Heap`, so the
allocation/monitor statistics of Table 1 are configuration-comparable.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List, Optional, Tuple

from ..bytecode.classfile import JMethod, Program
from ..bytecode.heap import Heap, HeapStats
from ..bytecode.instructions import MethodRef
from ..bytecode.interpreter import NO_OSR, Interpreter, Profile
from ..runtime.codegen import BoundCode, CodegenError
from ..runtime.costmodel import ExecutionStats
from ..runtime.deopt import Deoptimizer
from ..runtime.graph_interpreter import GraphInterpreter
from ..runtime.plan import BoundPlan, PlanError
from .cache import CompilationCache
from .compiler import CompilationResult, Compiler
from .listeners import VMListener
from .options import CompilerConfig

_MIN_RECURSION_LIMIT = 40_000


class VM:
    """One program + one configuration, ready to run."""

    def __init__(self, program: Program, config: CompilerConfig,
                 cache: Optional[CompilationCache] = None):
        if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
            sys.setrecursionlimit(_MIN_RECURSION_LIMIT)
        self.program = program
        self.config = config
        self.cache = cache
        self.heap = Heap(program)
        self.profile = Profile()
        self.interpreter = Interpreter(program, self.heap, self.profile)
        self.interpreter.dispatcher = self.call_method
        self.deoptimizer = Deoptimizer(program, self.heap,
                                       self.interpreter,
                                       notify=self._handle_deopt)
        self.exec_stats = ExecutionStats()
        self.graph_interpreter = GraphInterpreter(
            program, self.heap, self._invoke_callback, self.deoptimizer,
            config.cost_model, self.exec_stats,
            config.collect_node_histogram)
        self.compiler = Compiler(program, config, self.profile, cache)
        self.compiled: Dict[JMethod, CompilationResult] = {}
        #: Threaded-code plans bound to this VM's heap/stats (plan
        #: backend); methods missing here execute via the
        #: GraphInterpreter fallback.
        self._bound_plans: Dict[JMethod, BoundPlan] = {}
        #: Generated-Python functions bound to this VM (codegen
        #: backend); preferred over ``_bound_plans`` when present.
        self._bound_codegen: Dict[JMethod, BoundCode] = {}
        #: Methods that failed to compile (stay interpreted).
        self._uncompilable: Dict[JMethod, str] = {}
        #: On-stack-replacement variants, one per hot loop header.
        self.osr_compiled: Dict[Tuple[JMethod, int],
                                CompilationResult] = {}
        self._osr_plans: Dict[Tuple[JMethod, int], BoundPlan] = {}
        self._osr_codegen: Dict[Tuple[JMethod, int], BoundCode] = {}
        #: Loop headers whose OSR compilation failed (keep interpreting).
        self._osr_uncompilable: Dict[Tuple[JMethod, int], str] = {}
        #: Completed OSR transfers (observability; not a suite metric).
        self.osr_entries = 0
        self._interpreter_steps_counted = 0
        self.deopt_counts: Dict[JMethod, int] = {}
        self.invalidations = 0
        self._listeners: List[VMListener] = []
        if config.osr:
            self.interpreter.osr_handler = self._handle_osr

    # -- listeners --------------------------------------------------------

    def add_listener(self, listener: VMListener) -> VMListener:
        """Register a :class:`~repro.jit.listeners.VMListener`; events
        fire in registration order.  Returns the listener (chaining)."""
        self._listeners.append(listener)
        return listener

    def remove_listener(self, listener: VMListener) -> None:
        self._listeners.remove(listener)

    def _emit(self, event: str, *args) -> None:
        for listener in self._listeners:
            getattr(listener, event)(*args)

    # -- public -----------------------------------------------------------

    def call(self, qualified: str, *args) -> Any:
        """Invoke ``"Class.method"`` with *args* through the tiers."""
        return self.call_method(self.program.method(qualified),
                                list(args))

    def call_method(self, method: JMethod, args: List[Any]) -> Any:
        # The single invocation-counting point: every call — from the
        # host, from interpreted frames (via the interpreter's
        # dispatcher), or from compiled code — lands here and counts
        # exactly once, whichever tier executes it.  Counting anywhere
        # tier-dependent would make tiering decisions depend on which
        # tier the *caller* happened to run in.  _should_compile reads
        # the count before this call is added ("N prior invocations").
        if method.is_native:
            self.profile.record_invocation(method)
            self.exec_stats.cycles += (
                self.config.cost_model.invoke_overhead
                + method.native_cycle_cost)
            return method.native_impl(self.interpreter, args)
        compiled = self.compiled.get(method)
        if compiled is None and self._should_compile(method):
            compiled = self._compile(method)
        self.profile.record_invocation(method)
        if compiled is not None:
            return self._execute_compiled(method, compiled, args)
        return self._execute_interpreted(method, args)

    def warm_up(self, qualified: str, args_list) -> None:
        """Run the method repeatedly so it gets profiled and compiled."""
        for args in args_list:
            self.call(qualified, *args)

    def compile_now(self, qualified: str) -> CompilationResult:
        """Force compilation of a method (tests/benchmarks)."""
        method = self.program.method(qualified)
        result = self.compiled.get(method)
        if result is None:
            result = self._compile(method)
            if result is None:
                raise RuntimeError(
                    f"{qualified} failed to compile: "
                    f"{self._uncompilable.get(method)}")
        return result

    def heap_snapshot(self) -> HeapStats:
        return self.heap.stats.copy()

    def cycles_snapshot(self) -> float:
        self._sync_interpreter_cycles()
        return self.exec_stats.cycles

    # -- tiers -------------------------------------------------------------------

    def _should_compile(self, method: JMethod) -> bool:
        if method in self._uncompilable or not method.code:
            return False
        return (self.profile.invocation_count(method)
                >= self.config.compile_threshold)

    def _compile(self, method: JMethod) -> Optional[CompilationResult]:
        try:
            result = self.compiler.compile(method)
        except Exception as exc:  # noqa: BLE001 - compile bailout
            self._uncompilable[method] = f"{type(exc).__name__}: {exc}"
            if self.config.compile_bailout:
                return None  # stay interpreted, like a production VM
            raise
        self.compiled[method] = result
        if result.codegen is not None:
            try:
                self._bound_codegen[method] = result.codegen.bind(
                    self.heap, self.exec_stats, self._invoke_callback,
                    self.deoptimizer,
                    self.config.collect_node_histogram)
            except CodegenError:
                self._bound_codegen.pop(method, None)
        if result.plan is not None:
            try:
                self._bound_plans[method] = result.plan.bind(
                    self.heap, self.exec_stats, self._invoke_callback,
                    self.deoptimizer,
                    self.config.collect_node_histogram)
            except PlanError:
                self._bound_plans.pop(method, None)
        if result.cache_hit:
            self._emit("on_cache_hit", method, result.cache_entry)
        self._emit("on_compile", method, result)
        return result

    # -- on-stack replacement ---------------------------------------------

    def _handle_osr(self, method: JMethod, bci: int,
                    locals_: List[Any]) -> Any:
        """Interpreter backedge hook: count the backedge, and past the
        OSR threshold transfer control into the compiled OSR variant.
        Returns :data:`~repro.bytecode.interpreter.NO_OSR` to keep
        interpreting, else the method's result."""
        count = self.profile.record_backedge(method, bci)
        key = (method, bci)
        compiled = self.osr_compiled.get(key)
        if compiled is None:
            if count < self.config.osr_threshold or \
                    key in self._osr_uncompilable or \
                    method.is_synchronized:
                return NO_OSR
            compiled = self._compile_osr(method, bci)
            if compiled is None:
                return NO_OSR
        self.osr_entries += 1
        self.profile.record_osr_entry(method, bci)
        args = [locals_[slot]
                for slot in compiled.graph.osr_local_slots]
        code = self._osr_codegen.get(key)
        if code is not None:
            return code.execute(args)
        bound = self._osr_plans.get(key)
        if bound is not None:
            return bound.execute(args)
        return self.graph_interpreter.execute(compiled.graph, args)

    def _compile_osr(self, method: JMethod,
                     bci: int) -> Optional[CompilationResult]:
        from ..frontend.graph_builder import GraphBuildError
        key = (method, bci)
        try:
            result = self.compiler.compile(method, osr_bci=bci)
        except GraphBuildError as exc:
            # An un-OSR-able loop shape (e.g. the header of an inner
            # loop reached from an OSR entry) is normal: record it and
            # keep interpreting this loop.
            self._osr_uncompilable[key] = f"{type(exc).__name__}: {exc}"
            return None
        except Exception as exc:  # noqa: BLE001 - compile bailout
            self._osr_uncompilable[key] = f"{type(exc).__name__}: {exc}"
            if self.config.compile_bailout:
                return None
            raise
        self.osr_compiled[key] = result
        if result.codegen is not None:
            try:
                self._osr_codegen[key] = result.codegen.bind(
                    self.heap, self.exec_stats, self._invoke_callback,
                    self.deoptimizer,
                    self.config.collect_node_histogram)
            except CodegenError:
                self._osr_codegen.pop(key, None)
        if result.plan is not None:
            try:
                self._osr_plans[key] = result.plan.bind(
                    self.heap, self.exec_stats, self._invoke_callback,
                    self.deoptimizer,
                    self.config.collect_node_histogram)
            except PlanError:
                self._osr_plans.pop(key, None)
        if result.cache_hit:
            self._emit("on_cache_hit", method, result.cache_entry)
        self._emit("on_osr_compile", method, bci, result)
        return result

    def _execute_compiled(self, method: JMethod,
                          compiled: CompilationResult,
                          args: List[Any]) -> Any:
        code = self._bound_codegen.get(method)
        if code is not None:
            return code.execute(args)
        bound = self._bound_plans.get(method)
        if bound is not None:
            return bound.execute(args)
        return self.graph_interpreter.execute(compiled.graph, args)

    def _execute_interpreted(self, method: JMethod,
                             args: List[Any]) -> Any:
        self.exec_stats.interpreted_invocations += 1
        try:
            return self.interpreter.invoke(method, args)
        finally:
            self._sync_interpreter_cycles()

    def _sync_interpreter_cycles(self):
        steps = self.interpreter.stats.steps
        new_steps = steps - self._interpreter_steps_counted
        if new_steps:
            self._interpreter_steps_counted = steps
            self.exec_stats.interpreter_steps += new_steps
            self.exec_stats.cycles += (
                new_steps * self.config.cost_model.interpreter_step)

    def _handle_deopt(self, root_method: JMethod, state) -> None:
        """Invalidate code that keeps deoptimizing; the next compilation
        sees the updated profile and drops the failed speculation."""
        self._emit("on_deopt", root_method, state)
        count = self.deopt_counts.get(root_method, 0) + 1
        self.deopt_counts[root_method] = count
        has_code = (root_method in self.compiled
                    or any(m is root_method for m, __ in
                           self.osr_compiled))
        if count >= self.config.deopt_invalidate_threshold and has_code:
            self._invalidate(root_method, "deopt-threshold")

    def _invalidate(self, method: JMethod, reason: str) -> None:
        """Throw away *method*'s compiled code — the normal entry and
        every OSR variant (they embed the same failed speculation) —
        and evict the backing cache entries."""
        invalidated = []
        result = self.compiled.pop(method, None)
        if result is not None:
            invalidated.append(result)
        self._bound_plans.pop(method, None)
        self._bound_codegen.pop(method, None)
        for key in [k for k in self.osr_compiled if k[0] is method]:
            invalidated.append(self.osr_compiled.pop(key))
            self._osr_plans.pop(key, None)
            self._osr_codegen.pop(key, None)
            self._osr_uncompilable.pop(key, None)
        self.deopt_counts[method] = 0
        self.invalidations += 1
        if self.cache is not None:
            # The post-deopt profile changes the speculation facts, so
            # the cached entries could never validate again — and a
            # *different* VM whose profile still matches would re-import
            # the failed speculation.  Evict them.
            for result in invalidated:
                self.cache.evict(result.cache_entry)
        self._emit("on_invalidate", method, reason)

    def _invoke_callback(self, kind: str, ref: MethodRef,
                         args: List[Any]) -> Any:
        if kind == "virtual":
            receiver = args[0]
            callee = self.program.resolve_virtual(receiver.class_name,
                                                  ref.method_name)
        else:
            callee = self.program.resolve_method(ref.class_name,
                                                 ref.method_name)
        return self.call_method(callee, args)
