"""The compile service: one shared JIT process serving many VMs.

The paper's compiler is a *service* inside the VM — one background JIT
compiles for every thread while execution continues in lower tiers.
This module scales that shape out of the process: a persistent
:class:`CompileService` owns one sharded, digest-checked
:class:`~repro.jit.cache.CompilationCache` and compiles on behalf of
any number of concurrent VM clients (:mod:`repro.jit.client`), which
keep *interpreting* past the tier-up threshold and atomically install
the compiled payload when the reply arrives (background tier-up).

Wire protocol
-------------

Clients connect through :class:`multiprocessing.connection` (length-
prefixed pickle framing over a TCP or ``AF_UNIX`` socket, with HMAC
authentication).  Messages are plain tuples:

=====================================================  ==================
client -> service                                      service -> client
=====================================================  ==================
``("register", fingerprint, program_blob)``            ``("registered", fingerprint)``
``("compile", rid, fingerprint, qualified,``           ``("compiled", rid, key, blob, facts, meta)``
``  entry_bci, config, profile_snapshot)``             or ``("compile-error", rid, detail)``
``("evict", key, facts)``                              (no reply)
``("stats", rid)``                                     ``("stats", rid, dict)``
``("shutdown", rid)``                                  ``("ok", rid)``
=====================================================  ==================

Programs travel once per client as a *skeleton*: classes, field
layouts and method bytecode, with native implementations replaced by a
stub (the service compiles, it never executes, and
:meth:`~repro.bytecode.classfile.JMethod.content_key` only observes
the *presence* of a native implementation — so the skeleton's
:meth:`~repro.bytecode.classfile.Program.content_fingerprint` equals
the client's and both sides compute identical cache keys).

Compile requests carry a :meth:`~repro.bytecode.interpreter.Profile`
snapshot; the service replays it into a profile bound to its own
program copy, so the pipeline makes exactly the speculation decisions
the client's live profile would drive.  The reply is the cache entry
itself — the detached graph payload plus the recorded speculation
facts — which the client re-validates against its *current* profile
before installing (a deopt that raced the compilation changes the
facts, the stale reply is rejected, and the client resubmits).

Dedup and the shared cache
--------------------------

Requests are keyed by the PR 3 content-addressed compilation key.  A
request whose key is already being compiled *joins* the in-flight job
(one compilation, many replies); a request whose key validates against
the shared cache is answered immediately without queueing.  Deopt
invalidation flows back: clients broadcast ``("evict", key, facts)``
and the service drops the variant, so a failed speculation cannot be
re-served to the fleet.

Failure semantics: a dead service (or any connection error) makes the
client VM log once and fall back to in-process compilation — the
service is an accelerator, never a correctness dependency.
"""

from __future__ import annotations

import argparse
import pickle
import queue
import sys
import threading
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Tuple

from ..bytecode.classfile import (OBJECT_CLASS, JClass, JField, JMethod,
                                  Program)
from ..bytecode.interpreter import Profile
from .cache import CacheEntry, CompilationCache
from .options import CompilerConfig

#: Shared-secret for :mod:`multiprocessing.connection` HMAC handshakes.
#: Not a security boundary (the service runs on localhost for one
#: user); it keeps stray processes from garbling the framing.
DEFAULT_AUTHKEY = b"repro-compile-service"

#: Program-skeleton payload format (independent of CACHE_FORMAT).
PROGRAM_FORMAT = 1


def parse_address(spec):
    """``"host:port"`` -> tuple, anything else -> ``AF_UNIX`` path.
    Tuples pass through."""
    if isinstance(spec, tuple):
        return spec
    if ":" in spec and "/" not in spec:
        host, port = spec.rsplit(":", 1)
        return (host, int(port))
    return spec


def format_address(address) -> str:
    """Inverse of :func:`parse_address`, for CompilerConfig storage."""
    if isinstance(address, tuple):
        return f"{address[0]}:{address[1]}"
    return address


# -- program transport --------------------------------------------------------


def _native_stub(interpreter, args):  # pragma: no cover - never called
    raise RuntimeError(
        "native methods are not executable inside the compile service")


def dump_program(program: Program) -> bytes:
    """Serialize a program *skeleton*: everything the compiler can
    observe, nothing it can execute.  Native implementations become a
    presence flag so the fingerprint round-trips exactly."""
    classes = []
    for name, jclass in program.classes.items():
        if name == OBJECT_CLASS and not jclass.fields \
                and not jclass.methods:
            continue  # every Program starts with an empty Object
        class_fields = [(f.name, f.type_name, f.is_static, f.default)
                        for f in jclass.fields.values()]
        methods = [(m.name, list(m.param_types), m.return_type,
                    list(m.code), m.max_locals, m.is_static,
                    m.is_synchronized, m.is_native,
                    m.native_impl is not None, m.native_cycle_cost)
                   for m in jclass.methods.values()]
        classes.append((name, jclass.superclass_name, class_fields,
                        methods))
    return pickle.dumps({"format": PROGRAM_FORMAT, "classes": classes},
                        protocol=pickle.HIGHEST_PROTOCOL)


def load_program(blob: bytes) -> Program:
    """Rebuild a compilable :class:`Program` from :func:`dump_program`
    output.  The result has the same content fingerprint as the
    original, so service-side cache keys match client-side ones."""
    spec = pickle.loads(blob)
    if spec.get("format") != PROGRAM_FORMAT:
        raise ValueError(f"unknown program format {spec.get('format')}")
    program = Program()
    for name, superclass, class_fields, methods in spec["classes"]:
        if name == OBJECT_CLASS:
            jclass = program.lookup_class(name)
        else:
            jclass = program.add_class(JClass(name, superclass))
        for fname, type_name, is_static, default in class_fields:
            jclass.add_field(JField(fname, type_name, is_static,
                                    default))
        for (mname, params, ret, code, max_locals, is_static, is_sync,
             is_native, had_impl, cost) in methods:
            jclass.add_method(JMethod(
                mname, params, ret, code, max_locals,
                is_static=is_static, is_synchronized=is_sync,
                is_native=is_native,
                native_impl=_native_stub if had_impl else None,
                native_cycle_cost=cost))
    return program


# -- service ------------------------------------------------------------------


@dataclass
class ServiceStats:
    """Counters for one :class:`CompileService` instance."""

    requests: int = 0
    #: Deoptless continuation requests (entry_bci was a ``("cont", ...)``
    #: descriptor) among ``requests``.
    continuation_requests: int = 0
    #: Requests that joined an identical in-flight compilation.
    dedup_joined: int = 0
    #: Requests answered straight from the shared cache.
    cache_hits: int = 0
    #: Fresh compilations executed by the workers.
    compiles: int = 0
    compile_errors: int = 0
    evictions_received: int = 0
    programs_registered: int = 0
    connections: int = 0
    queue_depth_max: int = 0
    compiles_by_key: Dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> Dict[str, Any]:
        data = {f.name: getattr(self, f.name) for f in fields(self)
                if f.name != "compiles_by_key"}
        data["unique_keys_compiled"] = len(self.compiles_by_key)
        data["max_compiles_per_key"] = max(
            self.compiles_by_key.values(), default=0)
        data["dedup_or_hit_rate"] = (
            (self.dedup_joined + self.cache_hits)
            / self.requests if self.requests else 0.0)
        return data


class _ClientConn:
    """One accepted connection plus the send lock that serializes
    replies from connection and worker threads."""

    def __init__(self, conn):
        self.conn = conn
        self.lock = threading.Lock()
        self.closed = False

    def send(self, message) -> bool:
        with self.lock:
            if self.closed:
                return False
            try:
                self.conn.send(message)
                return True
            except (OSError, ValueError):
                self.closed = True
                return False

    def close(self):
        with self.lock:
            self.closed = True
            try:
                self.conn.close()
            except OSError:
                pass


@dataclass
class _Job:
    """One queued compilation with every connection waiting on it."""

    key: str
    fingerprint: str
    qualified: str
    entry_bci: Optional[int]
    config: CompilerConfig
    profile_snapshot: Optional[dict]
    #: Queue depth observed when the request was keyed; the worker's
    #: compiler re-resolves the escape tier with the same depth so the
    #: stored artifact lands under the dedup key even for depth-aware
    #: tier policies.
    queue_depth: int = 0
    waiters: List[Tuple[_ClientConn, int]] = field(default_factory=list)
    done: bool = False


class CompileService:
    """A persistent compile server: accept loop + async compile queue +
    dedup of identical in-flight requests + one shared cache.

    ``workers=0`` starts no compile workers (requests queue forever) —
    used by tests asserting clean shutdown with a non-empty queue."""

    def __init__(self, cache_dir: Optional[str] = None,
                 workers: int = 1, authkey: bytes = DEFAULT_AUTHKEY):
        # Same floor the VM sets: graph building and (de)serialization
        # recurse along deep block chains, and unlike a VM host process
        # nothing else in a service process raises the default limit.
        from .vm import _MIN_RECURSION_LIMIT
        if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
            sys.setrecursionlimit(_MIN_RECURSION_LIMIT)
        self.cache = CompilationCache(cache_dir)
        self.authkey = authkey
        self.worker_count = max(0, workers)
        self.stats = ServiceStats()
        self._programs: Dict[str, Program] = {}
        self._queue: "queue.Queue[Optional[_Job]]" = queue.Queue()
        self._inflight: Dict[str, _Job] = {}
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._listener = None
        self._address = None
        self._worker_threads: List[threading.Thread] = []
        self._conns: List[_ClientConn] = []

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self):
        return self._address

    def start(self, address=("127.0.0.1", 0)):
        """Bind *address*, start workers and the accept thread; returns
        the bound address (useful with port 0)."""
        from multiprocessing.connection import Listener
        # Listener's default backlog of 1 silently drops simultaneous
        # connects beyond the accept queue (the kernel completes the
        # client's handshake, the server never sees it, and Client()
        # blocks forever in the authkey exchange) — a whole-fleet
        # cold start is exactly that connect storm.
        self._listener = Listener(parse_address(address),
                                  authkey=self.authkey, backlog=128)
        self._address = self._listener.address
        for index in range(self.worker_count):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"compile-worker-{index}",
                                      daemon=True)
            thread.start()
            self._worker_threads.append(thread)
        accept = threading.Thread(target=self._accept_loop,
                                  name="compile-accept", daemon=True)
        accept.start()
        return self._address

    def serve_forever(self, address=("127.0.0.1", 0),
                      ready_callback=None) -> None:
        """:meth:`start`, report the bound address, block until
        :meth:`shutdown`."""
        bound = self.start(address)
        if ready_callback is not None:
            ready_callback(bound)
        self._stop.wait()

    def shutdown(self) -> None:
        """Stop accepting, fail every queued/in-flight request with a
        ``compile-error`` reply, and join the workers.  Safe to call
        with a non-empty queue and safe to call twice."""
        if self._stop.is_set():
            return
        self._stop.set()
        with self._lock:
            jobs = list(self._inflight.values())
            self._inflight.clear()
        for job in jobs:
            job.done = True
            for conn, rid in job.waiters:
                conn.send(("compile-error", rid,
                           "service shutting down"))
        for _ in self._worker_threads:
            self._queue.put(None)
        for thread in self._worker_threads:
            thread.join(timeout=10)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for conn in list(self._conns):
            conn.close()

    # -- accept / dispatch -------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                raw = self._listener.accept()
            except (OSError, EOFError):
                return  # listener closed
            except Exception:  # noqa: BLE001 - auth failure etc.
                continue
            conn = _ClientConn(raw)
            self._conns.append(conn)
            self.stats.connections += 1
            thread = threading.Thread(target=self._client_loop,
                                      args=(conn,), daemon=True)
            thread.start()

    def _client_loop(self, conn: _ClientConn) -> None:
        try:
            while not self._stop.is_set():
                try:
                    message = conn.conn.recv()
                except Exception:  # noqa: BLE001 - disconnect: EOF,
                    # bad fd, or TypeError when shutdown() nulls the
                    # handle under a blocked read.
                    return
                self._dispatch(conn, message)
        finally:
            conn.close()
            if conn in self._conns:
                self._conns.remove(conn)

    def _dispatch(self, conn: _ClientConn, message) -> None:
        kind = message[0]
        if kind == "register":
            __, fingerprint, blob = message
            with self._lock:
                if fingerprint not in self._programs:
                    self._programs[fingerprint] = load_program(blob)
                    self.stats.programs_registered += 1
            conn.send(("registered", fingerprint))
        elif kind == "compile":
            __, rid, fingerprint, qualified, entry_bci, config, \
                snapshot = message
            self._handle_compile(conn, rid, fingerprint, qualified,
                                 entry_bci, config, snapshot)
        elif kind == "evict":
            __, key, facts = message
            self.cache.evict_variant(key, facts)
            self.stats.evictions_received += 1
        elif kind == "stats":
            conn.send(("stats", message[1], self.stats.snapshot()))
        elif kind == "shutdown":
            conn.send(("ok", message[1]))
            # Shut down from a fresh thread: shutdown() joins workers
            # and closes connections, including this one.
            threading.Thread(target=self.shutdown, daemon=True).start()

    def _handle_compile(self, conn: _ClientConn, rid: int,
                        fingerprint: str, qualified: str,
                        entry_bci: Optional[int],
                        config: CompilerConfig,
                        snapshot: Optional[dict]) -> None:
        from .cache import validate_facts
        if self._stop.is_set():
            # Raced shutdown(): the queue is being failed, so a job
            # enqueued now would never be drained.  Refuse immediately.
            conn.send(("compile-error", rid, "service shutting down"))
            return
        from .deoptless import is_continuation_entry
        with self._lock:
            self.stats.requests += 1
            if is_continuation_entry(entry_bci):
                self.stats.continuation_requests += 1
            program = self._programs.get(fingerprint)
            if program is None:
                conn.send(("compile-error", rid,
                           f"unregistered program {fingerprint[:12]}"))
                self.stats.compile_errors += 1
                return
            # The service compiles locally; its config must not point
            # back at a service.
            config = replace(config, compile_service=None,
                             compile_service_wait=False)
            try:
                method = program.method(qualified)
                profile = None
                if snapshot is not None:
                    profile = Profile()
                    profile.restore(program, snapshot)
            except Exception as exc:  # noqa: BLE001 - bad request
                conn.send(("compile-error", rid,
                           f"{type(exc).__name__}: {exc}"))
                self.stats.compile_errors += 1
                return
            # Resolve the escape tier exactly as the worker's compiler
            # will (same profile snapshot, same queue depth) so the
            # dedup key matches the key the artifact is stored under.
            queue_depth = self._queue.qsize()
            hotness = (profile.invocation_count(method)
                       if profile is not None else 0)
            tier = config.resolve_tier(
                qualified, len(method.code), hotness,
                queue_depth=queue_depth).token()
            key = CompilationCache.compilation_key(
                program, method, config, profile is not None, entry_bci,
                tier)
            job = self._inflight.get(key)
            if job is not None and not job.done:
                job.waiters.append((conn, rid))
                self.stats.dedup_joined += 1
                return
            entry = self._peek_cache(key, program, profile,
                                     validate_facts)
            if entry is not None:
                self.stats.cache_hits += 1
                conn.send(("compiled", rid, entry.key, entry.blob,
                           entry.facts, entry.meta))
                return
            job = _Job(key, fingerprint, qualified, entry_bci, config,
                       snapshot, queue_depth=queue_depth,
                       waiters=[(conn, rid)])
            self._inflight[key] = job
            self._queue.put(job)
            self.stats.queue_depth_max = max(
                self.stats.queue_depth_max, self._queue.qsize())

    def _peek_cache(self, key: str, program: Program,
                    profile: Optional[Profile],
                    validate_facts) -> Optional[CacheEntry]:
        """The first cached variant under *key* whose facts validate
        against the request's profile, without materializing the
        payload (the client does that)."""
        with self.cache._lock:
            for entry in self.cache._entries(key):
                if validate_facts(entry.facts, program, profile):
                    return entry
        return None

    # -- workers -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                self._compile_job(job)
            except Exception as exc:  # noqa: BLE001 - reply, don't die
                self._finish_job(job, error=f"{type(exc).__name__}: "
                                            f"{exc}")

    def _compile_job(self, job: _Job) -> None:
        from .compiler import Compiler
        program = self._programs[job.fingerprint]
        method = program.method(job.qualified)
        profile = None
        if job.profile_snapshot is not None:
            profile = Profile()
            profile.restore(program, job.profile_snapshot)
        compiler = Compiler(program, job.config, profile,
                            cache=self.cache)
        compiler.service_queue_depth = job.queue_depth
        try:
            result = compiler.compile(method, osr_bci=job.entry_bci)
        except Exception as exc:  # noqa: BLE001 - compile failure
            self._finish_job(job, error=f"{type(exc).__name__}: {exc}")
            return
        entry = result.cache_entry
        if entry is None:
            self._finish_job(job, error="compilation not cacheable")
            return
        with self._lock:
            if result.cache_hit:
                self.stats.cache_hits += 1
            else:
                self.stats.compiles += 1
                self.stats.compiles_by_key[entry.key] = \
                    self.stats.compiles_by_key.get(entry.key, 0) + 1
        self._finish_job(job, entry=entry)

    def _finish_job(self, job: _Job, entry: Optional[CacheEntry] = None,
                    error: Optional[str] = None) -> None:
        with self._lock:
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]
            job.done = True
            waiters = list(job.waiters)
        for conn, rid in waiters:
            if error is not None:
                self.stats.compile_errors += 1
                conn.send(("compile-error", rid, error))
            else:
                conn.send(("compiled", rid, entry.key, entry.blob,
                           entry.facts, entry.meta))


# -- CLI ----------------------------------------------------------------------


def main(argv=None) -> int:
    """``repro serve``: run a compile service in the foreground."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="run a shared JIT compile service")
    parser.add_argument("--address", default="127.0.0.1:0",
                        help="host:port or Unix socket path "
                             "(default: 127.0.0.1 with an OS-chosen "
                             "port, printed on startup)")
    parser.add_argument("--cache-dir",
                        help="persist the shared compilation cache "
                             "under this directory")
    parser.add_argument("--workers", type=int, default=2,
                        help="compile worker threads (default 2)")
    args = parser.parse_args(argv)
    service = CompileService(cache_dir=args.cache_dir,
                             workers=args.workers)

    def announce(bound):
        print(f"compile service listening on {format_address(bound)}"
              + (f" (cache: {args.cache_dir})" if args.cache_dir
                 else ""),
              flush=True)

    try:
        service.serve_forever(parse_address(args.address),
                              ready_callback=announce)
    except KeyboardInterrupt:
        pass
    finally:
        service.shutdown()
        stats = service.stats.snapshot()
        print(f"served {stats['requests']} requests "
              f"({stats['compiles']} compiles, "
              f"{stats['cache_hits']} cache hits, "
              f"{stats['dedup_joined']} deduped)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
