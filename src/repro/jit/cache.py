"""Content-addressed compilation cache: compile once, run everywhere.

Compilation in this VM is a pure function of three things:

1. the **program content** — every class, field layout and method
   bytecode the pipeline can observe (inlining reads callee bytecode and
   class-hierarchy facts, so the whole closed world participates:
   :meth:`repro.bytecode.classfile.Program.content_fingerprint`);
2. the **configuration** — which phases run and with which knobs
   (:func:`pipeline_fingerprint`); and
3. the **profile facts the pipeline actually consumed** — branch-count
   speculation decisions, branch probabilities and receiver-type
   speculation, recorded by threading a :class:`RecordingProfile`
   through ``build_graph``/``InliningPhase``.

The cache is keyed by (1) + (2) plus whether a profile was present;
each entry carries its recorded facts (3) as a *speculation
fingerprint*.  A lookup hits only when every recorded fact still holds
against the requesting VM's live profile — the discipline of
speculative-code caches (Deoptless, arXiv:2203.02340; soundness of
cached speculative code is exactly "assumptions still hold",
arXiv:1711.03050).  When a VM invalidates a method after repeated
deoptimization, it also evicts the cache entry it used: the post-deopt
profile changes the facts, so the entry can never validate again.

Two levels:

- **Level 1** is in-process and shared across VMs (the fuzzer's three
  differential engines, the benchmark harness's per-config VMs).
- **Level 2** is an optional on-disk store (``--cache-dir`` /
  ``$REPRO_CACHE_DIR`` / ``~/.cache/repro-pea``) holding the same
  payloads, so a second harness run starts warm.

Payloads are *detached* pickles of the optimized graph: every reference
to a :class:`~repro.bytecode.classfile.JMethod` / ``JClass`` /
``Program`` is replaced by a symbolic token at pickling time and
re-resolved against the **requesting** program at load time
(:func:`dump_graph_payload` / :func:`load_graph_payload`).  Every hit
therefore yields a private, correctly-bound graph copy — two VMs never
share mutable IR, and a fuzzer engine's hit binds frame states to *its*
method objects so deoptimization re-enters *its* interpreter.  The
threaded-code lowering is persisted as its pre-lowering table (the
linearized instruction order) and re-linked per VM
(:meth:`repro.runtime.plan.ExecutionPlan.from_payload`).
"""

from __future__ import annotations

import hashlib
import io
import itertools
import os
import pickle
import threading
import time
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

from ..bytecode.classfile import JClass, JField, JMethod, Program
from ..bytecode.interpreter import Profile
from ..ir.graph import Graph
from .options import CompilerConfig

#: Bump when the payload format changes (disk entries self-invalidate).
#: 2: keys gained the OSR entry-bci dimension; Graph payloads carry
#: ``osr_entry_bci``/``osr_local_slots``.
#: 3: ``escape_summaries`` joined the pipeline key, PEAResult payloads
#: carry materialization events, entries may carry ``escape_summary``
#: facts.
#: 4: payloads gained ``codegen`` — the generated-Python source (text +
#: digest + node-id link tables) of the codegen backend, re-``exec``-ed
#: on warm load.
#: 5: disk files echo their key and carry per-entry SHA-256 blob
#: digests, so the sharded store can be written by many processes
#: (compile-service fleet) and a torn, corrupted or cross-shard file is
#: detected at read time instead of deserializing garbage.
#: 6: the ``entry_bci`` key dimension may be a deoptless continuation
#: descriptor ``("cont", bci, stack_depth, context)`` — specialized
#: continuation variants are cached per dispatch context — and Graph
#: payloads carry ``entry_stack_depth``.
#: 7: the escape knobs collapsed into the ``escape_tier`` policy: the
#: pipeline fingerprint hashes the policy descriptor (replacing the
#: ``escape_analysis``/``stack_allocation``/``escape_summaries``
#: dimensions) and compilation keys gained the per-method *resolved*
#: tier token, so a policy that tiers methods differently over time
#: never serves an artifact across tiers.
CACHE_FORMAT = 7


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or the conventional user cache location."""
    configured = os.environ.get("REPRO_CACHE_DIR")
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-pea")


def _digest(description: Any) -> str:
    return hashlib.sha256(repr(description).encode("utf-8")).hexdigest()


# -- configuration fingerprints ----------------------------------------------

#: CompilerConfig fields that select/parameterize the graph pipeline.
#: Deliberately excluded: ``execution_backend``, ``cost_model`` and
#: ``collect_node_histogram`` (they shape execution, not the optimized
#: graph — excluding them is what lets the legacy and plan engines share
#: entries), ``compile_threshold`` / ``deopt_invalidate_threshold``
#: (when to compile, not what; their effect on the profile is captured
#: by the speculation facts), ``verify_ir`` and ``compile_bailout``
#: (observability only).
_PIPELINE_FIELDS = (
    "inline", "canonicalize", "gvn", "speculate_branches",
    "speculation_min_samples", "speculate_types", "pea_iterations",
    "read_elimination", "conditional_elimination",
    "pea_virtualize_arrays", "pea_fold_checks",
)


def pipeline_fingerprint(config: CompilerConfig) -> str:
    """Hash of every configuration knob that can change the optimized
    graph a compilation produces.

    The escape tier enters twice: the *policy* descriptor here (so two
    configs with different policies never share a namespace), and the
    per-method *resolved* tier token in each compilation key (so one
    ``"auto"`` policy resolving a method differently over time — cold
    conngraph now, hot PEA later — never serves an artifact across
    tiers)."""
    description = [("escape_tier", config.tier_descriptor())]
    description.extend((name, getattr(config, name))
                       for name in _PIPELINE_FIELDS)
    policy = config.inlining_policy
    description.append(("inlining_policy",
                        tuple((f.name, getattr(policy, f.name))
                              for f in fields(policy))))
    return _digest(description)


def full_config_fingerprint(config: CompilerConfig) -> str:
    """Hash of the *entire* configuration, execution knobs included —
    used by the benchmark harness's warm-up records, where compile
    trigger points and simulated costs all matter."""
    description = [("pipeline", pipeline_fingerprint(config)),
                   ("execution_backend", config.execution_backend),
                   ("compile_service", config.compile_service),
                   ("compile_service_wait", config.compile_service_wait),
                   ("compile_threshold", config.compile_threshold),
                   ("osr", config.osr),
                   ("osr_threshold", config.osr_threshold),
                   ("deopt_invalidate_threshold",
                    config.deopt_invalidate_threshold),
                   ("deoptless", config.deoptless),
                   ("deoptless_max_variants",
                    config.deoptless_max_variants),
                   ("compile_bailout", config.compile_bailout),
                   ("cost_model",
                    tuple((f.name, getattr(config.cost_model, f.name))
                          for f in fields(config.cost_model)))]
    return _digest(description)


# -- speculation facts --------------------------------------------------------


class RecordingProfile:
    """A :class:`Profile` proxy that records every query the compilation
    pipeline makes, together with its answer.

    The recorded ``facts`` are the compilation's *speculation
    fingerprint*: replaying them against another profile and getting the
    same answers proves the pipeline would make the same speculation
    and inlining decisions, so the cached graph is exactly what a fresh
    compilation would produce.

    Facts are recorded at *decision* level (speculation outcome,
    receiver class name), not as raw sample counters: decisions stay
    stable as a steady-state profile keeps counting, so entries keep
    validating across warm-up replays and across runs."""

    def __init__(self, profile: Profile):
        self.profile = profile
        self.facts: List[tuple] = []

    # Queried by GraphBuilder._try_speculate.
    def branch_outcome(self, method: JMethod, bci: int,
                       min_samples: int):
        outcome = self.profile.branch_outcome(method, bci, min_samples)
        self.facts.append(("branch_outcome", method.qualified_name, bci,
                           min_samples, outcome))
        return outcome

    # Defensive: nothing in the pipeline reads raw counts today, but a
    # phase that starts to would get an exact-count (always-safe) fact.
    def branch_counts(self, method: JMethod, bci: int):
        counts = self.profile.branch_counts(method, bci)
        self.facts.append(("branch_counts", method.qualified_name, bci,
                           counts))
        return counts

    # Queried by GraphBuilder for If edge probabilities.  Deliberately
    # NOT recorded as a fact: the probability is embedded in the graph
    # as display metadata only (no phase keys an optimization off it),
    # and its exact float changes with every profile tick.  If a phase
    # ever consumes probabilities for real decisions, this must start
    # recording them (quantized) or cached graphs could diverge.
    def taken_probability(self, method: JMethod, bci: int) -> float:
        return self.profile.taken_probability(method, bci)

    # Queried by GraphBuilder._try_speculate: loop exits stop being
    # profiled once the loop tiers up through OSR.
    def loop_has_osr(self, method: JMethod, bci: int) -> bool:
        outcome = self.profile.loop_has_osr(method, bci)
        self.facts.append(("loop_has_osr", method.qualified_name, bci,
                           outcome))
        return outcome

    # Queried by InliningPhase._speculative_target.
    def monomorphic_receiver(self, method: JMethod, bci: int,
                             min_samples: int):
        receiver = self.profile.monomorphic_receiver(method, bci,
                                                     min_samples)
        self.facts.append(("monomorphic_receiver", method.qualified_name,
                           bci, min_samples, receiver))
        return receiver

    # Queried by threshold-derived policies (and harness probes).
    def invocation_count(self, method: JMethod) -> int:
        count = self.profile.invocation_count(method)
        self.facts.append(("invocation_count", method.qualified_name,
                           count))
        return count


def validate_facts(facts: Tuple[tuple, ...], program: Program,
                   profile: Optional[Profile]) -> bool:
    """True when every recorded profile fact holds verbatim against
    *profile* (method names resolved in *program*).

    ``escape_summary`` facts are program facts, not profile facts: they
    are revalidated by recomputing the summary database against the
    requesting program (memoized there), independent of any profile.
    """
    summary_facts = [fact for fact in facts
                     if fact[0] == "escape_summary"]
    if summary_facts:
        try:
            from ..analysis.summaries import summaries_for
            database = summaries_for(program)
            for __, qualified, expected in summary_facts:
                if database.digest(
                        program.method(qualified)) != expected:
                    return False
        except Exception:  # noqa: BLE001 - unresolved method etc.
            return False
        facts = tuple(fact for fact in facts
                      if fact[0] != "escape_summary")
    if profile is None:
        return not facts
    try:
        for fact in facts:
            kind = fact[0]
            if kind == "branch_outcome":
                __, qualified, bci, min_samples, expected = fact
                actual = profile.branch_outcome(
                    program.method(qualified), bci, min_samples)
            elif kind == "branch_counts":
                __, qualified, bci, expected = fact
                actual = profile.branch_counts(program.method(qualified),
                                               bci)
            elif kind == "loop_has_osr":
                __, qualified, bci, expected = fact
                actual = profile.loop_has_osr(
                    program.method(qualified), bci)
            elif kind == "monomorphic_receiver":
                __, qualified, bci, min_samples, expected = fact
                actual = profile.monomorphic_receiver(
                    program.method(qualified), bci, min_samples)
            elif kind == "invocation_count":
                __, qualified, expected = fact
                actual = profile.invocation_count(
                    program.method(qualified))
            else:
                return False
            if actual != expected:
                return False
    except Exception:
        return False
    return True


# -- detached graph payloads --------------------------------------------------


class _DetachingPickler(pickle.Pickler):
    """Pickles a graph with program-owned objects replaced by symbolic
    tokens, so the payload is program-instance independent."""

    def __init__(self, file, program: Program):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._program = program

    def persistent_id(self, obj):
        if isinstance(obj, JMethod):
            if obj.holder is None:
                raise pickle.PicklingError(
                    f"method {obj.name} has no holder class")
            return ("jmethod", obj.holder.name, obj.name)
        if isinstance(obj, JClass):
            return ("jclass", obj.name)
        if isinstance(obj, Program):
            return ("program",)
        if isinstance(obj, JField):
            for jclass in self._program.classes.values():
                if jclass.fields.get(obj.name) is obj:
                    return ("jfield", jclass.name, obj.name)
            raise pickle.PicklingError(f"field {obj.name} not found")
        return None


class _AttachingUnpickler(pickle.Unpickler):
    """Resolves the tokens of :class:`_DetachingPickler` against the
    requesting program, so loaded graphs bind to *its* methods."""

    def __init__(self, file, program: Program):
        super().__init__(file)
        self._program = program

    def persistent_load(self, token):
        kind = token[0]
        if kind == "jmethod":
            return self._program.lookup_class(token[1]).methods[token[2]]
        if kind == "jclass":
            return self._program.lookup_class(token[1])
        if kind == "program":
            return self._program
        if kind == "jfield":
            return self._program.lookup_class(token[1]).fields[token[2]]
        raise pickle.UnpicklingError(f"unknown token {token!r}")


def dump_graph_payload(payload: Any, program: Program) -> bytes:
    buffer = io.BytesIO()
    _DetachingPickler(buffer, program).dump(payload)
    return buffer.getvalue()


def load_graph_payload(blob: bytes, program: Program) -> Any:
    return _AttachingUnpickler(io.BytesIO(blob), program).load()


# -- the cache ----------------------------------------------------------------


@dataclass
class CacheStats:
    """Counters for one :class:`CompilationCache` instance."""

    hits: int = 0
    misses: int = 0
    #: Candidates whose speculation facts no longer held.
    validation_failures: int = 0
    evictions: int = 0
    stores: int = 0
    #: Deoptless continuation variants stored (a subset of ``stores``).
    continuation_stores: int = 0
    disk_hits: int = 0
    disk_writes: int = 0
    lookup_seconds: float = 0.0
    store_seconds: float = 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def delta(self, before: Dict[str, Any]) -> Dict[str, Any]:
        return {name: value - before[name]
                for name, value in self.snapshot().items()}


@dataclass
class CachedCompilation:
    """One validated hit: a private graph copy bound to the requesting
    program, plus everything needed to rebuild a CompilationResult."""

    graph: Graph
    ea_result: Any
    node_count: int
    #: Linearized node-id order of the threaded-code plan,
    #: ``"unsupported"`` when plan lowering failed at store time, or
    #: ``None`` when the storing compiler never built a plan.
    plan_order: Any
    #: Generated-Python payload of the codegen backend
    #: (:meth:`repro.runtime.codegen.CodegenPlan.payload`),
    #: ``"unsupported"`` when structurizing failed at store time, or
    #: ``None`` when the storing compiler never tried.
    codegen: Any
    #: Handle for eviction (used by the VM on deopt invalidation).
    entry: "CacheEntry"


@dataclass
class CacheEntry:
    """One stored compilation variant under one key."""

    key: str
    facts: Tuple[tuple, ...]
    blob: bytes
    meta: Dict[str, Any] = field(default_factory=dict)


class CompilationCache:
    """Two-level content-addressed store of optimized graphs.

    Safe to share across VMs and programs: keys are content hashes,
    hits are validated against the requesting VM's live profile, and
    every hit materializes a private graph copy.  Also safe to share
    across *threads* (the compile service's workers) — every mutation
    of the in-memory level runs under one lock — and across *processes*
    through the disk level: the on-disk store is sharded by key prefix,
    every write is a lockfile-free atomic rename, and every read
    re-verifies the file's key echo and per-entry blob digests, so a
    concurrent writer can never make a reader observe a torn,
    corrupted or cross-shard payload."""

    def __init__(self, cache_dir: Optional[str] = None):
        self.cache_dir = cache_dir
        self.stats = CacheStats()
        self._lock = threading.RLock()
        #: Distinguishes temporary files of concurrent writer threads.
        self._tmp_counter = itertools.count()
        #: key -> list of entries (variants differ in their facts).
        self._memory: Dict[str, List[CacheEntry]] = {}
        #: Keys whose disk file has already been consulted.
        self._disk_seen: set = set()
        #: Harness warm-up records (level 1; mirrored to disk).
        self._harness: Dict[str, Dict[str, Any]] = {}

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def compilation_key(program: Program, method: JMethod,
                        config: CompilerConfig, profiled: bool,
                        entry_bci=None, tier: Optional[str] = None
                        ) -> str:
        """*entry_bci* distinguishes on-stack-replacement variants (one
        per loop header) from the normal method-entry compilation
        (``None``) — they are different graphs of the same method.  It
        may also be a deoptless continuation descriptor
        ``("cont", bci, stack_depth, context)``: the dispatch context is
        part of the key, so specialized continuation variants of one
        deopt site cache independently.

        *tier* is the **resolved** escape-tier token this compilation
        runs under (``Compiler.resolve_tier_for``); ``None`` resolves a
        static tier from the config.  Keying on the resolution — not
        just the policy — is what guarantees no entry is ever served
        across ``escape_tier`` values."""
        if tier is None:
            spec = config.static_tier_spec()
            tier = spec.token() if spec is not None else "?"
        return _digest((CACHE_FORMAT, program.content_fingerprint(),
                        method.qualified_name,
                        pipeline_fingerprint(config), profiled,
                        entry_bci, tier))

    # -- lookup/store -------------------------------------------------------

    def lookup(self, program: Program, method: JMethod,
               config: CompilerConfig, profile: Optional[Profile],
               entry_bci: Optional[int] = None,
               tier: Optional[str] = None
               ) -> Optional[CachedCompilation]:
        started = time.perf_counter()
        try:
            with self._lock:
                return self._lookup_locked(program, method, config,
                                           profile, entry_bci, tier)
        finally:
            self.stats.lookup_seconds += time.perf_counter() - started

    def _lookup_locked(self, program, method, config, profile,
                       entry_bci, tier=None
                       ) -> Optional[CachedCompilation]:
            key = self.compilation_key(program, method, config,
                                       profile is not None, entry_bci,
                                       tier)
            entries = self._entries(key)
            saw_candidate = False
            for entry in entries:
                if not validate_facts(entry.facts, program, profile):
                    saw_candidate = True
                    continue
                try:
                    payload = load_graph_payload(entry.blob, program)
                except Exception:
                    # Unresolvable token (program drifted): unusable.
                    saw_candidate = True
                    continue
                self.stats.hits += 1
                return CachedCompilation(
                    payload["graph"], payload["ea_result"],
                    payload["node_count"], payload["plan_order"],
                    payload.get("codegen"), entry)
            if saw_candidate:
                self.stats.validation_failures += 1
            self.stats.misses += 1
            return None

    def store(self, program: Program, method: JMethod,
              config: CompilerConfig, profile: Optional[Profile],
              facts: Tuple[tuple, ...], graph: Graph, ea_result: Any,
              node_count: int, plan_order: Any,
              entry_bci: Optional[int] = None,
              codegen: Any = None,
              tier: Optional[str] = None) -> Optional[CacheEntry]:
        started = time.perf_counter()
        try:
            key = self.compilation_key(program, method, config,
                                       profile is not None, entry_bci,
                                       tier)
            try:
                blob = dump_graph_payload(
                    {"graph": graph, "ea_result": ea_result,
                     "node_count": node_count, "plan_order": plan_order,
                     "codegen": codegen},
                    program)
            except Exception:
                return None  # unpicklable graph: simply don't cache
            entry = CacheEntry(key, tuple(facts), blob,
                               {"method": method.qualified_name,
                                "entry_bci": entry_bci})
            self.adopt_entry(entry)
            if isinstance(entry_bci, tuple):
                self.stats.continuation_stores += 1
            return entry
        finally:
            self.stats.store_seconds += time.perf_counter() - started

    def adopt_entry(self, entry: CacheEntry) -> None:
        """Install an externally produced entry (a compile-service
        reply) under its key, replacing any variant with equal facts."""
        with self._lock:
            entries = self._entries(entry.key)
            entries[:] = [e for e in entries if e.facts != entry.facts]
            entries.append(entry)
            self.stats.stores += 1
            self._write_disk(entry.key, entries)

    def evict(self, entry: Optional[CacheEntry]) -> None:
        """Drop one variant — used when deopt invalidation proves its
        speculation wrong (the post-deopt profile changes the facts, so
        the entry could never validate again anyway)."""
        if entry is None:
            return
        with self._lock:
            entries = self._memory.get(entry.key)
            if not entries:
                return
            remaining = [e for e in entries if e is not entry
                         and e.facts != entry.facts]
            if len(remaining) != len(entries):
                self._memory[entry.key] = remaining
                self.stats.evictions += 1
                self._write_disk(entry.key, remaining)

    def evict_variant(self, key: str, facts: Tuple[tuple, ...]) -> bool:
        """Drop the variant of *key* whose facts match — the
        compile-service side of deopt invalidation, where the client
        names the entry instead of holding it."""
        with self._lock:
            entries = self._entries(key)
            facts = tuple(map(tuple, facts))
            remaining = [e for e in entries if e.facts != facts]
            if len(remaining) == len(entries):
                return False
            self._memory[key] = remaining
            self.stats.evictions += 1
            self._write_disk(key, remaining)
            return True

    def _entries(self, key: str) -> List[CacheEntry]:
        entries = self._memory.get(key)
        if entries is None:
            entries = self._memory[key] = []
        if self.cache_dir and key not in self._disk_seen:
            self._disk_seen.add(key)
            for entry in self._read_disk(key):
                if all(e.facts != entry.facts for e in entries):
                    entries.append(entry)
                    self.stats.disk_hits += 1
        return entries

    # -- level 2 ------------------------------------------------------------
    #
    # The disk store is sharded by the first two hex digits of the key
    # (256 shard directories) so a fleet of writers spreads its
    # directory traffic, and is written lockfile-free: each write goes
    # to a uniquely named temporary file in the same shard and is
    # published with one atomic ``os.replace``.  Readers re-verify the
    # file's key echo (a file moved or renamed across shards is
    # rejected wholesale) and each entry's SHA-256 blob digest (a
    # corrupted or torn payload is rejected per entry).

    def _shard(self, key: str) -> str:
        return key[:2]

    def _graph_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, "graphs", self._shard(key),
                            f"{key}.pkl")

    def _read_disk(self, key: str) -> List[CacheEntry]:
        path = self._graph_path(key)
        try:
            with open(path, "rb") as handle:
                stored = pickle.load(handle)
            if stored.get("format") != CACHE_FORMAT:
                return []
            if stored.get("key") != key:
                return []  # cross-shard/renamed file: reject wholesale
            return [CacheEntry(key, tuple(map(tuple, e["facts"])),
                               e["blob"], e.get("meta", {}))
                    for e in stored["entries"]
                    if hashlib.sha256(e["blob"]).hexdigest()
                    == e.get("digest")]
        except Exception:
            return []

    def _write_disk(self, key: str, entries: List[CacheEntry]) -> None:
        if not self.cache_dir:
            return
        path = self._graph_path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            stored = {"format": CACHE_FORMAT, "key": key,
                      "entries": [{"facts": e.facts, "blob": e.blob,
                                   "meta": e.meta,
                                   "digest": hashlib.sha256(
                                       e.blob).hexdigest()}
                                  for e in entries]}
            tmp = (f"{path}.tmp.{os.getpid()}"
                   f".{threading.get_ident()}"
                   f".{next(self._tmp_counter)}")
            with open(tmp, "wb") as handle:
                pickle.dump(stored, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
            self.stats.disk_writes += 1
        except OSError:
            pass  # disk layer is best-effort

    # -- harness warm-up records --------------------------------------------

    def _harness_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, "harness", f"{key}.pkl")

    def load_harness_record(self, key: str) -> Optional[Dict[str, Any]]:
        record = self._harness.get(key)
        if record is not None:
            return record
        if not self.cache_dir:
            return None
        try:
            with open(self._harness_path(key), "rb") as handle:
                stored = pickle.load(handle)
            if stored.get("format") != CACHE_FORMAT:
                return None
            record = stored["record"]
            self._harness[key] = record
            return record
        except Exception:
            return None

    def store_harness_record(self, key: str,
                             record: Dict[str, Any]) -> None:
        self._harness[key] = record
        if not self.cache_dir:
            return
        path = self._harness_path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "wb") as handle:
                pickle.dump({"format": CACHE_FORMAT, "record": record},
                            handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            pass


# -- disk maintenance (the `repro cache` subcommand) --------------------------


def disk_stats(cache_dir: str) -> Dict[str, Any]:
    """Entry/byte counts for one on-disk cache directory.

    Graph files are opened (best-effort) to split the variant count
    into method-entry graphs vs deoptless continuations — a
    continuation's ``entry_bci`` metadata is the ``("cont", ...)``
    descriptor tuple, where plain entries carry an int bci or none."""
    summary = {"dir": cache_dir, "graph_files": 0, "graph_bytes": 0,
               "graph_entries": 0, "continuation_entries": 0,
               "harness_files": 0, "harness_bytes": 0}
    for section, files_key, bytes_key in (
            ("graphs", "graph_files", "graph_bytes"),
            ("harness", "harness_files", "harness_bytes")):
        root = os.path.join(cache_dir, section)
        for dirpath, __, filenames in os.walk(root):
            for name in filenames:
                if not name.endswith(".pkl"):
                    continue
                summary[files_key] += 1
                path = os.path.join(dirpath, name)
                try:
                    summary[bytes_key] += os.path.getsize(path)
                except OSError:
                    continue
                if section != "graphs":
                    continue
                try:
                    with open(path, "rb") as handle:
                        stored = pickle.load(handle)
                    entries = stored.get("entries", [])
                except Exception:
                    continue
                summary["graph_entries"] += len(entries)
                summary["continuation_entries"] += sum(
                    1 for e in entries
                    if isinstance(e.get("meta", {}).get("entry_bci"),
                                  (tuple, list)))
    return summary


def clear_disk(cache_dir: str) -> int:
    """Delete all cache files under *cache_dir*; returns files removed."""
    import shutil
    removed = 0
    for section in ("graphs", "harness"):
        root = os.path.join(cache_dir, section)
        if not os.path.isdir(root):
            continue
        for dirpath, __, filenames in os.walk(root):
            removed += sum(1 for n in filenames if n.endswith(".pkl"))
        shutil.rmtree(root, ignore_errors=True)
    return removed
