"""Typed VM event listeners.

The VM used to expose exactly one event through a mutable
``Deoptimizer.on_deopt`` attribute; with on-stack replacement the event
surface grew (OSR compilations, invalidations, cache hits), so events
are now a typed protocol.  Subclass :class:`VMListener`, override the
events you care about, and register with
:meth:`repro.jit.vm.VM.add_listener` — unknown events stay no-ops, so
listeners keep working as the VM grows new ones.
"""

from __future__ import annotations


class VMListener:
    """Base class/protocol for VM lifecycle events.

    Every hook is a no-op by default.  Events fire synchronously on the
    VM's thread, in listener registration order.
    """

    def on_compile(self, method, result) -> None:
        """*method* was compiled at its normal entry; *result* is the
        :class:`~repro.jit.compiler.CompilationResult`."""

    def on_osr_compile(self, method, bci: int, result) -> None:
        """An on-stack-replacement variant of *method* entering at loop
        header *bci* was compiled."""

    def on_deopt(self, method, state) -> None:
        """Compiled code of *method* deoptimized at frame state
        *state* (the innermost state; ``state.outer_chain()`` walks the
        inlined frames)."""

    def on_invalidate(self, method, reason: str) -> None:
        """*method*'s compiled code (normal entry and every OSR
        variant) was thrown away; *reason* is a short tag such as
        ``"deopt-threshold"``."""

    def on_cache_hit(self, method, entry) -> None:
        """A compilation of *method* was served from the compilation
        cache; *entry* is the :class:`~repro.jit.cache.CacheEntry`."""

    def on_continuation_compile(self, method, bci: int, context,
                                result) -> None:
        """A deoptless continuation of *method* entering at deopt site
        *bci*, specialized against dispatch *context* (see
        :mod:`repro.jit.deoptless`), was compiled; *result* is the
        :class:`~repro.jit.compiler.CompilationResult`."""

    def on_dispatch(self, method, bci: int, context, hit: bool) -> None:
        """A deopt of *method* at *bci* reached the deoptless dispatch
        point with *context*.  ``hit=True`` means execution transferred
        into a matching continuation variant; ``hit=False`` means no
        variant matched (yet) and the interpreter bridged this deopt."""

    def on_gc(self, minor: int, pause_cycles: int,
              promoted_bytes: int) -> None:
        """The simulated generational collector
        (:mod:`repro.runtime.gcsim`) ran minor collection number
        *minor* (cumulative count for this VM), pausing the simulated
        machine for *pause_cycles* and promoting *promoted_bytes* to
        the old generation."""
