"""The compilation pipeline: bytecode -> optimized graph.

Mirrors Graal's structure: graph building, inlining, canonicalization and
global value numbering, then (optionally) one of the escape analyses,
then cleanup.

When given a :class:`~repro.jit.cache.CompilationCache`, the compiler
becomes memoizing: it records every profile fact the pipeline consumes
(through a :class:`~repro.jit.cache.RecordingProfile`) and stores the
optimized graph under a content-addressed key; later compilations of the
same method under the same configuration — from this compiler or any
other sharing the cache — reuse the stored graph when the recorded facts
still hold against their own profile.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..bytecode.classfile import JMethod, Program
from ..bytecode.interpreter import Profile
from ..frontend.graph_builder import build_graph
from ..ir.graph import Graph
from ..opt.canonicalize import CanonicalizerPhase
from ..opt.dce import DeadCodeEliminationPhase
from ..opt.gvn import GlobalValueNumberingPhase
from ..opt.inlining import InliningPhase
from ..opt.phase import PhasePlan
from ..pea.equi_escape import EquiEscapePhase
from ..pea.partial_escape import PartialEscapePhase, PEAResult
from ..runtime.codegen import CodegenError, CodegenPlan
from ..runtime.plan import ExecutionPlan, PlanError
from .cache import (CacheEntry, CompilationCache, RecordingProfile,
                    load_graph_payload)
from .deoptless import is_continuation_entry
from .options import CompilerConfig, TierSpec


@dataclass
class CompilationResult:
    graph: Graph
    #: Stats from the escape analysis (empty result when disabled).
    ea_result: PEAResult
    node_count: int
    #: Threaded-code lowering of the graph; ``None`` when the legacy
    #: backend is selected or the graph uses a node kind the plan
    #: builder does not support (the VM then falls back to the
    #: GraphInterpreter for this method).
    plan: Optional[ExecutionPlan] = None
    #: Cache entry this result came from / was stored under, so deopt
    #: invalidation can evict it.  ``None`` when caching is off.
    cache_entry: Optional[CacheEntry] = None
    #: True when this result was served from the cache.
    cache_hit: bool = False
    #: Generated-Python lowering; only built under the ``codegen``
    #: backend, ``None`` when the graph cannot be structurized (the VM
    #: then uses ``plan``, which is built as the fallback).
    codegen: Optional[CodegenPlan] = None
    #: The profile facts this compilation consumed (speculations the
    #: optimized code depends on).  Recorded whether or not a cache is
    #: attached, so the VM can re-validate installed code against the
    #: live profile (stale-OSR retirement, continuation dispatch).
    facts: tuple = ()


class Compiler:
    """Compiles methods of one program under one configuration."""

    def __init__(self, program: Program, config: CompilerConfig,
                 profile: Optional[Profile] = None,
                 cache: Optional[CompilationCache] = None):
        self.program = program
        self.config = config
        self.profile = profile
        self.cache = cache
        #: PhaseTiming list from the most recent non-cached compile().
        self.last_timings = []
        #: Aggregates across this compiler's lifetime (satellite 2: the
        #: harness reports these instead of dropping per-compile data).
        self.compile_count = 0
        self.cache_hit_count = 0
        self.compile_seconds_total = 0.0
        self.phase_seconds: Dict[str, float] = {}
        #: Pending jobs on the compile-service queue, fed to the
        #: escape-tier policy (0 for in-process compilation; the
        #: service sets it per job so a busy fleet degrades hot methods
        #: to the cheap tier instead of queueing PEA work).
        self.service_queue_depth = 0

    def resolve_tier_for(self, method: JMethod) -> TierSpec:
        """Evaluate the per-method escape-tier policy.

        Reads hotness from the *live* profile (never through a
        :class:`RecordingProfile` — an exact invocation-count fact
        would almost never revalidate and would kill caching).  Cache
        safety comes from keying every artifact with the resolved tier
        token instead.
        """
        hotness = (self.profile.invocation_count(method)
                   if self.profile is not None else 0)
        return self.config.resolve_tier(
            method.qualified_name, len(method.code), hotness,
            queue_depth=self.service_queue_depth)

    def compile(self, method: JMethod,
                osr_bci=None) -> CompilationResult:
        """Compile *method*; with *osr_bci*, compile the on-stack
        replacement entry variant whose entry is that loop header.
        *osr_bci* may also be a deoptless continuation descriptor
        (:func:`repro.jit.deoptless.continuation_entry`), which compiles
        an entry at an arbitrary deopt bci specialized against the
        descriptor's dispatch context."""
        started = time.perf_counter()
        result = self._compile(method, osr_bci)
        self.compile_seconds_total += time.perf_counter() - started
        self.compile_count += 1
        if result.cache_hit:
            self.cache_hit_count += 1
        return result

    def _compile(self, method: JMethod,
                 osr_bci=None) -> CompilationResult:
        config = self.config
        tier = self.resolve_tier_for(method)

        if self.cache is not None:
            cached = self.cache.lookup(self.program, method, config,
                                       self.profile, entry_bci=osr_bci,
                                       tier=tier.token())
            if cached is not None:
                codegen_plan = self._codegen_from_payload(
                    cached.graph, cached.codegen, method, osr_bci)
                plan = None if codegen_plan is not None else \
                    self._plan_from_order(cached.graph,
                                          cached.plan_order)
                return CompilationResult(
                    cached.graph, cached.ea_result, cached.node_count,
                    plan, cache_entry=cached.entry, cache_hit=True,
                    codegen=codegen_plan,
                    facts=tuple(cached.entry.facts)
                    if cached.entry is not None else ())
        # Record consumed facts even without a cache: the VM uses them
        # to re-validate installed code against the live profile.
        profile = RecordingProfile(self.profile) \
            if self.profile is not None else None

        continuation = None
        if is_continuation_entry(osr_bci):
            continuation = tuple(osr_bci[1:])  # (bci, stack_depth, ctx)

        graph = build_graph(self.program, method, profile,
                            config.speculate_branches,
                            config.speculation_min_samples,
                            osr_bci=None if continuation is not None
                            else osr_bci,
                            continuation=continuation)

        plan = PhasePlan(verify_ir=config.verify_ir)
        # OSR graphs are warm-up bridges and skip inlining: calls from
        # OSR'd code then record callee invocations through the VM's
        # invoke callback exactly as interpreted calls would, so which
        # methods tier up — and every deterministic benchmark metric —
        # is identical whether a loop reached steady state through OSR
        # or through the interpreter alone.  (Inlined callees record
        # nothing, so an inlining OSR graph would starve the callees of
        # the loop it took over out of their own compilations.)
        if config.inline and osr_bci is None:
            plan.append(InliningPhase(self.program,
                                      config.inlining_policy,
                                      profile,
                                      config.speculate_branches,
                                      config.speculation_min_samples,
                                      config.speculate_types))
        if config.canonicalize:
            plan.append(CanonicalizerPhase())
        if config.gvn:
            plan.append(GlobalValueNumberingPhase())
        if config.conditional_elimination:
            from ..opt.conditional_elimination import \
                ConditionalEliminationPhase
            plan.append(ConditionalEliminationPhase())
        plan.append(DeadCodeEliminationPhase())

        summary_view = None
        if tier.summaries:
            from ..analysis.summaries import SummaryView, summaries_for
            summary_view = SummaryView(summaries_for(self.program))

        ea_phase = None
        if tier.base == "pea":
            ea_phase = PartialEscapePhase(
                self.program, config.pea_iterations,
                virtualize_arrays=config.pea_virtualize_arrays,
                fold_virtual_checks=config.pea_fold_checks,
                summaries=summary_view)
        elif tier.base == "equi":
            ea_phase = EquiEscapePhase(self.program)
        elif tier.base == "conngraph":
            # The cheap tier: no PEA — straight-line lock elision now,
            # connection-graph stack allocation below.
            from ..analysis.conngraph import ConnGraphLockElisionPhase
            ea_phase = ConnGraphLockElisionPhase(
                self.program, summaries=summary_view)
        if ea_phase is not None:
            plan.append(ea_phase)
            if config.canonicalize:
                plan.append(CanonicalizerPhase())
            if config.gvn:
                plan.append(GlobalValueNumberingPhase())
            plan.append(DeadCodeEliminationPhase())
        if config.read_elimination:
            from ..opt.read_elimination import ReadEliminationPhase
            plan.append(ReadEliminationPhase())
            plan.append(DeadCodeEliminationPhase())
        if tier.stack_analysis == "conngraph":
            from ..opt.stack_allocation import StackAllocationPhase
            plan.append(StackAllocationPhase(self.program,
                                             summaries=summary_view,
                                             analysis="conngraph"))
        elif tier.stack_analysis == "equi":
            from ..opt.stack_allocation import StackAllocationPhase
            plan.append(StackAllocationPhase(self.program))
        elif summary_view is not None:
            # Summary-marginal stack allocation: what the summaries
            # uniquely prove non-escaping (and PEA still materialized)
            # moves off the heap, so the escape-summaries A/B in
            # Table 1 attributes every allocation delta to the
            # interprocedural analysis alone.
            from ..opt.stack_allocation import StackAllocationPhase
            plan.append(StackAllocationPhase(self.program,
                                             summaries=summary_view,
                                             marginal_only=True))

        plan.run(graph)
        self.last_timings = plan.timings
        for timing in plan.timings:
            self.phase_seconds[timing.phase] = \
                self.phase_seconds.get(timing.phase, 0.0) + timing.seconds
        ea_result = (ea_phase.last_result if ea_phase is not None
                     and ea_phase.last_result is not None else PEAResult())
        execution_plan = None
        plan_order = None
        codegen_plan = None
        codegen_payload = None
        if config.execution_backend == "codegen":
            try:
                codegen_plan = CodegenPlan(
                    graph, self.program, config.cost_model,
                    self._codegen_label(method, osr_bci))
                codegen_payload = codegen_plan.payload()
            except CodegenError:
                codegen_plan = None  # fall back to the plan backend
                codegen_payload = "unsupported"
        if config.execution_backend == "plan" or (
                config.execution_backend == "codegen"
                and codegen_plan is None):
            try:
                execution_plan = ExecutionPlan(graph, self.program,
                                               config.cost_model)
                plan_order = execution_plan.payload()
            except PlanError:
                execution_plan = None  # VM falls back to GraphInterpreter
                plan_order = "unsupported"

        facts = tuple(profile.facts) if profile is not None else ()
        if summary_view is not None:
            # Summaries are speculation-like facts: a cached graph
            # is only reusable while every consulted summary still
            # digests the same against the loading program.
            facts = facts + summary_view.facts()
        entry = None
        if self.cache is not None:
            entry = self.cache.store(
                self.program, method, config, self.profile, facts,
                graph, ea_result, graph.node_count(), plan_order,
                entry_bci=osr_bci, codegen=codegen_payload,
                tier=tier.token())
        return CompilationResult(graph, ea_result, graph.node_count(),
                                 execution_plan, cache_entry=entry,
                                 codegen=codegen_plan, facts=facts)

    def result_from_service(self, method: JMethod, blob: bytes,
                            facts, key: str, meta: Optional[dict],
                            osr_bci=None) -> CompilationResult:
        """Materialize a compile-service reply exactly like a cache
        hit: attach the detached payload to *this* program, re-link the
        backend lowering, and adopt the entry into the local cache so
        deopt invalidation can evict it (and later lookups hit without
        a round trip).  The caller has already validated *facts*
        against its live profile."""
        payload = load_graph_payload(blob, self.program)
        entry = CacheEntry(key, tuple(map(tuple, facts)), blob,
                           dict(meta or {}))
        codegen_plan = self._codegen_from_payload(
            payload["graph"], payload.get("codegen"), method, osr_bci)
        plan = None if codegen_plan is not None else \
            self._plan_from_order(payload["graph"],
                                  payload["plan_order"])
        if self.cache is not None:
            self.cache.adopt_entry(entry)
        self.compile_count += 1
        self.cache_hit_count += 1
        return CompilationResult(
            payload["graph"], payload["ea_result"],
            payload["node_count"], plan, cache_entry=entry,
            cache_hit=True, codegen=codegen_plan,
            facts=tuple(map(tuple, facts)))

    @staticmethod
    def _codegen_label(method: JMethod, osr_bci) -> str:
        if osr_bci is None:
            return method.qualified_name
        if is_continuation_entry(osr_bci):
            return f"{method.qualified_name}@cont{osr_bci[1]}"
        return f"{method.qualified_name}@osr{osr_bci}"

    def _codegen_from_payload(self, graph: Graph, payload, method: JMethod,
                              osr_bci: Optional[int]
                              ) -> Optional[CodegenPlan]:
        """Re-link generated code from a cached payload.

        A missing payload (stored by another backend) regenerates from
        the graph; a corrupted or stale payload (digest mismatch, node
        ids that no longer resolve) is treated as a clean miss and also
        regenerates; an ``"unsupported"`` marker means structurizing
        failed at store time, so (same graph) it would fail now.
        """
        if self.config.execution_backend != "codegen":
            return None
        if payload == "unsupported":
            return None
        if payload is not None:
            try:
                return CodegenPlan.from_payload(
                    graph, self.program, self.config.cost_model, payload)
            except CodegenError:
                pass  # fall through: regenerate from the cached graph
        try:
            return CodegenPlan(graph, self.program,
                               self.config.cost_model,
                               self._codegen_label(method, osr_bci))
        except CodegenError:
            return None

    def _plan_from_order(self, graph: Graph,
                         plan_order) -> Optional[ExecutionPlan]:
        """Re-link a threaded-code plan from a cached linearization.

        The entry records whether the storing compiler found the graph
        plan-lowerable; an ``"unsupported"`` marker means lowering
        failed then, so (same graph) it would fail now — skip retrying.
        """
        if self.config.execution_backend not in ("plan", "codegen"):
            return None
        if plan_order == "unsupported":
            return None
        try:
            if plan_order is None:
                # Stored by a legacy-backend compiler that never tried
                # to lower; build the plan from scratch.
                return ExecutionPlan(graph, self.program,
                                     self.config.cost_model)
            return ExecutionPlan.from_payload(graph, self.program,
                                              self.config.cost_model,
                                              plan_order)
        except PlanError:
            return None
