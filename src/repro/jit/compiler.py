"""The compilation pipeline: bytecode -> optimized graph.

Mirrors Graal's structure: graph building, inlining, canonicalization and
global value numbering, then (optionally) one of the escape analyses,
then cleanup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..bytecode.classfile import JMethod, Program
from ..bytecode.interpreter import Profile
from ..frontend.graph_builder import build_graph
from ..ir.graph import Graph
from ..opt.canonicalize import CanonicalizerPhase
from ..opt.dce import DeadCodeEliminationPhase
from ..opt.gvn import GlobalValueNumberingPhase
from ..opt.inlining import InliningPhase
from ..opt.phase import PhasePlan
from ..pea.equi_escape import EquiEscapePhase
from ..pea.partial_escape import PartialEscapePhase, PEAResult
from ..runtime.plan import ExecutionPlan, PlanError
from .options import CompilerConfig, EscapeAnalysisKind


@dataclass
class CompilationResult:
    graph: Graph
    #: Stats from the escape analysis (empty result when disabled).
    ea_result: PEAResult
    node_count: int
    #: Threaded-code lowering of the graph; ``None`` when the legacy
    #: backend is selected or the graph uses a node kind the plan
    #: builder does not support (the VM then falls back to the
    #: GraphInterpreter for this method).
    plan: Optional[ExecutionPlan] = None


class Compiler:
    """Compiles methods of one program under one configuration."""

    def __init__(self, program: Program, config: CompilerConfig,
                 profile: Optional[Profile] = None):
        self.program = program
        self.config = config
        self.profile = profile
        #: PhaseTiming list from the most recent compile().
        self.last_timings = []

    def compile(self, method: JMethod) -> CompilationResult:
        config = self.config
        graph = build_graph(self.program, method, self.profile,
                            config.speculate_branches,
                            config.speculation_min_samples)

        plan = PhasePlan(verify_ir=config.verify_ir)
        if config.inline:
            plan.append(InliningPhase(self.program,
                                      config.inlining_policy,
                                      self.profile,
                                      config.speculate_branches,
                                      config.speculation_min_samples,
                                      config.speculate_types))
        if config.canonicalize:
            plan.append(CanonicalizerPhase())
        if config.gvn:
            plan.append(GlobalValueNumberingPhase())
        if config.conditional_elimination:
            from ..opt.conditional_elimination import \
                ConditionalEliminationPhase
            plan.append(ConditionalEliminationPhase())
        plan.append(DeadCodeEliminationPhase())

        ea_phase = None
        if config.escape_analysis is EscapeAnalysisKind.PARTIAL:
            ea_phase = PartialEscapePhase(
                self.program, config.pea_iterations,
                virtualize_arrays=config.pea_virtualize_arrays,
                fold_virtual_checks=config.pea_fold_checks)
        elif config.escape_analysis is EscapeAnalysisKind.EQUI_ESCAPE:
            ea_phase = EquiEscapePhase(self.program)
        if ea_phase is not None:
            plan.append(ea_phase)
            if config.canonicalize:
                plan.append(CanonicalizerPhase())
            if config.gvn:
                plan.append(GlobalValueNumberingPhase())
            plan.append(DeadCodeEliminationPhase())
        if config.read_elimination:
            from ..opt.read_elimination import ReadEliminationPhase
            plan.append(ReadEliminationPhase())
            plan.append(DeadCodeEliminationPhase())
        if config.stack_allocation:
            from ..opt.stack_allocation import StackAllocationPhase
            plan.append(StackAllocationPhase(self.program))

        plan.run(graph)
        self.last_timings = plan.timings
        ea_result = (ea_phase.last_result if ea_phase is not None
                     and ea_phase.last_result is not None else PEAResult())
        execution_plan = None
        if config.execution_backend == "plan":
            try:
                execution_plan = ExecutionPlan(graph, self.program,
                                               config.cost_model)
            except PlanError:
                execution_plan = None  # VM falls back to GraphInterpreter
        return CompilationResult(graph, ea_result, graph.node_count(),
                                 execution_plan)
