"""Deoptless: dispatched OSR with specialized continuations.

A failed speculation normally throws the frame back to the interpreter
and (after a few repeats) invalidates the compiled code — a latency
cliff exactly when traffic shifts.  Following Flückiger & Krynski
(*Deoptless*, 2022), a deopt instead becomes a *dispatch point*: the VM
derives a **dispatch context** from the observed failing runtime state
(the branch direction or receiver type that falsified the speculation),
compiles an OSR-style *continuation* entering at the deopt bci whose
entry parameters are the rematerialized live state, specialized against
that context, and on every later deopt at the same site dispatches
among the live variants by re-deriving the context from the current
state.  Pathological polymorphism is bounded by a per-site variant cap
with LRU retirement, so the worst case degrades to today's
deopt-to-interpreter behavior, never below it.

This module owns the parts that need no VM: the continuation cache-key
descriptor (it rides the existing ``entry_bci`` dimension of the
compilation cache and the compile-service wire protocol), dispatch
context derivation (mirroring the interpreter's branch/receiver
evaluation exactly), and the per-``(method, entry_bci)`` variant table.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..bytecode.classfile import JMethod
from ..bytecode.interpreter import _COMPARE_FNS
from ..bytecode.opcodes import Op

#: Tag marking a continuation descriptor in the cache/service
#: ``entry_bci`` slot (a plain loop-header int means classic OSR).
CONT_TAG = "cont"

#: A dispatch context: ``("branch", bci, taken)`` or
#: ``("receiver", bci, class_name)``.
Context = Tuple[str, int, Any]


def continuation_entry(bci: int, stack_depth: int,
                       context: Optional[Context]) -> tuple:
    """The cache-key / wire-protocol descriptor for one continuation
    variant.  Hashable and picklable; rides the ``entry_bci`` field."""
    return (CONT_TAG, bci, stack_depth, context)


def is_continuation_entry(entry_bci) -> bool:
    return (isinstance(entry_bci, tuple) and len(entry_bci) == 4
            and entry_bci[0] == CONT_TAG)


def derive_context(method: JMethod, bci: int, locals_: List[Any],
                   stack: List[Any]) -> Optional[Context]:
    """The dispatch context of a deopt landing at *bci* with the given
    rematerialized frame, or None when the site is not specializable.

    Mirrors the interpreter's evaluation exactly: a conditional branch's
    context is the direction it is about to take with the current
    operands; an invokevirtual's context is the receiver's dynamic
    class.  Guard states put the stack *before* the failing instruction
    back on the frame, so the operands are sitting on top of *stack*.
    """
    if not 0 <= bci < len(method.code):
        return None
    insn = method.code[bci]
    op = insn.op
    fn = _COMPARE_FNS.get(op)
    if fn is not None:
        if len(stack) < 2:
            return None
        taken = bool(fn(stack[-2], stack[-1]))
        return ("branch", bci, taken)
    if op is Op.IF_NULL or op is Op.IF_NONNULL:
        if not stack:
            return None
        taken = (stack[-1] is None) == (op is Op.IF_NULL)
        return ("branch", bci, taken)
    if op is Op.INVOKEVIRTUAL:
        ref = insn.operand
        if len(stack) < ref.arg_count:
            return None
        receiver = stack[-ref.arg_count]
        if receiver is None:
            return None  # about to raise NPE — not specializable
        return ("receiver", bci, receiver.class_name)
    return None


@dataclass
class Variant:
    """One installed continuation: a bound entry point plus the
    bookkeeping dispatch needs to retire it."""

    context: Optional[Context]
    result: Any  # CompilationResult
    entry: Callable[[List[Any]], Any]
    #: Speculation facts baked into the variant (for staleness checks).
    facts: tuple = ()
    #: The owning method's deopt epoch when the variant was last known
    #: valid against the live profile.
    epoch: int = 0


@dataclass
class DeoptlessStats:
    continuation_compiles: int = 0
    dispatches: int = 0
    dispatch_misses: int = 0
    retirements: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "continuation_compiles": self.continuation_compiles,
            "dispatches": self.dispatches,
            "dispatch_misses": self.dispatch_misses,
            "retirements": self.retirements,
        }


class VariantTable:
    """Per-``(method, entry_bci)`` continuation variants, LRU-bounded.

    ``lookup`` refreshes recency; ``install`` retires the least recently
    dispatched variant once a site holds ``max_variants`` — retirement
    hands the evicted variant back to the caller so the VM can drop its
    cache entry."""

    def __init__(self, max_variants: int):
        self.max_variants = max(1, int(max_variants))
        self._sites: Dict[Tuple[JMethod, int],
                          "OrderedDict[Optional[Context], Variant]"] = {}

    def lookup(self, method: JMethod, bci: int,
               context: Optional[Context]) -> Optional[Variant]:
        site = self._sites.get((method, bci))
        if site is None:
            return None
        variant = site.get(context)
        if variant is not None:
            site.move_to_end(context)
        return variant

    def install(self, method: JMethod, bci: int,
                variant: Variant) -> Optional[Variant]:
        """Install (or replace) a variant; returns the retired one, if
        the cap forced a retirement."""
        site = self._sites.setdefault((method, bci), OrderedDict())
        site[variant.context] = variant
        site.move_to_end(variant.context)
        if len(site) > self.max_variants:
            _, retired = site.popitem(last=False)
            return retired
        return None

    def remove(self, method: JMethod, bci: int,
               context: Optional[Context]) -> Optional[Variant]:
        site = self._sites.get((method, bci))
        if site is None:
            return None
        return site.pop(context, None)

    def variants_at(self, method: JMethod, bci: int) -> List[Variant]:
        site = self._sites.get((method, bci))
        return list(site.values()) if site else []

    def site_count(self, method: JMethod, bci: int) -> int:
        return len(self._sites.get((method, bci), ()))

    def total(self) -> int:
        return sum(len(site) for site in self._sites.values())
