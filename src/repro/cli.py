"""Command-line interface.

Subcommands::

    python -m repro run FILE --entry Main.run --args 100 [--config pea]
    python -m repro compile FILE --method Main.run [--dump-ir] [--dot F]
    python -m repro disasm FILE
    python -m repro fuzz --programs 200 --seed 1234 [--corpus-dir D]
    python -m repro table1 [...]        (delegates to benchsuite.table1)
    python -m repro comparison [...]    (delegates to .comparison)
"""

from __future__ import annotations

import argparse
import sys

from .bytecode import Interpreter, disassemble_program
from .frontend import build_graph
from .ir import dump_graph, to_dot
from .jit import VM, Compiler, CompilerConfig
from .lang import compile_source

CONFIGS = {
    "interp": None,
    "no-ea": CompilerConfig.no_ea,
    "equi": CompilerConfig.equi_escape,
    "pea": CompilerConfig.partial_escape,
}


def _load(path: str):
    with open(path) as handle:
        return compile_source(handle.read())


def cmd_run(args) -> int:
    program = _load(args.file)
    call_args = [int(a) for a in args.args]
    if args.config == "interp":
        interp = Interpreter(program)
        result = interp.call(args.entry, *call_args)
        stats = interp.heap.stats
        cycles = ""
    else:
        vm = VM(program, CONFIGS[args.config]())
        for _ in range(args.warmup):
            vm.call(args.entry, *call_args)
            program.reset_statics()
        heap_before = vm.heap_snapshot()
        cycles_before = vm.cycles_snapshot()
        result = vm.call(args.entry, *call_args)
        stats = vm.heap_snapshot().delta(heap_before)
        cycles = f"  cycles={vm.cycles_snapshot() - cycles_before:,.0f}"
    print(f"result: {result}")
    print(f"allocations={stats.allocations}  "
          f"bytes={stats.allocated_bytes}  "
          f"monitors={stats.monitor_enters}/{stats.monitor_exits}"
          f"{cycles}")
    return 0


def cmd_compile(args) -> int:
    program = _load(args.file)
    method = program.method(args.method)
    config = CONFIGS.get(args.config, CompilerConfig.partial_escape)
    if config is None:
        print("cannot compile with --config interp", file=sys.stderr)
        return 2
    compiler = Compiler(program, config())
    result = compiler.compile(method)
    print(f"{args.method}: {result.node_count} IR nodes")
    if args.timings:
        for timing in compiler.last_timings:
            marker = "*" if timing.changed else " "
            print(f"  {marker} {timing.phase:<28} "
                  f"{timing.seconds * 1000:8.2f} ms")
    ea = result.ea_result
    print(f"escape analysis: virtualized={ea.virtualized_allocations} "
          f"materializations={ea.materializations} "
          f"monitor_pairs_removed={ea.removed_monitor_pairs}")
    if args.dump_ir:
        print(dump_graph(result.graph, include_floating=False))
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(to_dot(result.graph))
        print(f"wrote {args.dot}")
    if args.html:
        from .ir.htmlviz import write_html
        write_html(result.graph, args.html)
        print(f"wrote {args.html}")
    return 0


def cmd_disasm(args) -> int:
    print(disassemble_program(_load(args.file)))
    return 0


def cmd_fuzz(args) -> int:
    import os
    if args.verify_ir:
        os.environ["REPRO_VERIFY_IR"] = "1"
    from .verify.fuzz import fuzz
    report = fuzz(programs=args.programs, seed=args.seed,
                  corpus_dir=args.corpus_dir,
                  shrink=not args.no_shrink, log=print)
    print(f"ran {report.programs_run} programs, "
          f"{len(report.coverage)} coverage keys "
          f"({report.coverage_adds} coverage-adding programs), "
          f"{len(report.failures)} failure(s)")
    for failure in report.failures:
        reproducer = failure.reproducer()
        print(f"  [{failure.category}] {failure.detail} "
              f"({reproducer.statement_count()} statements)")
    return 1 if report.failures else 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    # argparse.REMAINDER refuses to swallow leading option-style tokens
    # (bpo-17050), so `repro table1 --suite ...` never reaches the
    # delegate; hand the benchsuite subcommands their argv directly.
    if argv and argv[0] in ("table1", "comparison"):
        import importlib
        module = importlib.import_module(f"repro.benchsuite.{argv[0]}")
        module.main(argv[1:])
        return 0
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Partial Escape Analysis reproduction toolchain")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="execute a program on a chosen engine")
    run_parser.add_argument("file")
    run_parser.add_argument("--entry", default="Main.main")
    run_parser.add_argument("--args", nargs="*", default=[])
    run_parser.add_argument("--config", choices=sorted(CONFIGS),
                            default="pea")
    run_parser.add_argument("--warmup", type=int, default=30)
    run_parser.set_defaults(func=cmd_run)

    compile_parser = subparsers.add_parser(
        "compile", help="compile one method and report/dump the IR")
    compile_parser.add_argument("file")
    compile_parser.add_argument("--method", required=True)
    compile_parser.add_argument("--config", choices=["no-ea", "equi",
                                                     "pea"],
                                default="pea")
    compile_parser.add_argument("--dump-ir", action="store_true")
    compile_parser.add_argument("--timings", action="store_true",
                                help="print per-phase compile times "
                                     "(* = phase changed the graph)")
    compile_parser.add_argument("--dot")
    compile_parser.add_argument("--html",
                                help="write a standalone HTML/SVG "
                                     "visualization of the graph")
    compile_parser.set_defaults(func=cmd_compile)

    disasm_parser = subparsers.add_parser(
        "disasm", help="disassemble a program's bytecode")
    disasm_parser.add_argument("file")
    disasm_parser.set_defaults(func=cmd_disasm)

    fuzz_parser = subparsers.add_parser(
        "fuzz", help="coverage-guided differential fuzzing "
                     "(interpreter vs legacy vs plan backend)")
    fuzz_parser.add_argument("--programs", type=int, default=200)
    fuzz_parser.add_argument("--seed", type=int, default=1234)
    fuzz_parser.add_argument("--corpus-dir",
                             help="write shrunk reproducers "
                                  "(.jasm + .json) here")
    fuzz_parser.add_argument("--no-shrink", action="store_true",
                             help="skip delta-debugging of failures")
    fuzz_parser.add_argument("--verify-ir", action="store_true",
                             default=True,
                             help="run the full IR verifier after "
                                  "every phase (default on)")
    fuzz_parser.set_defaults(func=cmd_fuzz)

    for name, module in (("table1", "table1"),
                         ("comparison", "comparison")):
        bench_parser = subparsers.add_parser(
            name, help=f"run the benchsuite {name} report",
            add_help=False)
        bench_parser.add_argument("rest", nargs=argparse.REMAINDER)

        def delegate(args, _module=module):
            import importlib
            mod = importlib.import_module(
                f"repro.benchsuite.{_module}")
            mod.main(args.rest)
            return 0

        bench_parser.set_defaults(func=delegate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
