"""Command-line interface.

Subcommands::

    python -m repro run FILE --entry Main.run --args 100 [--config pea]
    python -m repro compile FILE --method Main.run [--dump-ir] [--dot F]
    python -m repro disasm FILE
    python -m repro analyze PATH... [--json]   (lint + escape report)
    python -m repro lint PATH... [--json]      (lint passes only)
    python -m repro fuzz --programs 200 --seed 1234 [--corpus-dir D]
    python -m repro serve [--address HOST:PORT] [--cache-dir D]
    python -m repro cache stats|clear [--cache-dir D]
    python -m repro table1 [...]        (delegates to benchsuite.table1)
    python -m repro comparison [...]    (delegates to .comparison)
    python -m repro jitdiff [...]       (delegates to .jitdiff)

``analyze`` and ``lint`` accept source files, ``.jasm`` assembly files,
or directories (searched recursively for both) and share one exit-code
contract: 0 = clean, 1 = findings, 2 = error (unreadable input, parse
failure).

``run`` and ``fuzz`` accept ``--cache/--no-cache`` (share compiled
graphs across VMs; on by default for fuzz) and ``--cache-dir DIR``
(persist the cache on disk so later runs start warm).

``serve`` starts a compile service; ``run --service HOST:PORT``
tiers up through it in the background, and ``fuzz --service`` routes
every differential engine through one shared service (started
in-process when no address is given).
"""

from __future__ import annotations

import argparse
import sys

from . import api
from .api import CompilationCache, CompilerConfig, compile_source, \
    default_cache_dir
from .bytecode import Interpreter, disassemble_program
from .ir import dump_graph, to_dot
from .jit import Compiler

def _pea_with_summaries(**kwargs):
    kwargs.setdefault("escape_tier", "pea+summaries")
    return CompilerConfig(**kwargs)


def _auto_tier(**kwargs):
    kwargs.setdefault("escape_tier", "auto")
    return CompilerConfig(**kwargs)


CONFIGS = {
    "interp": None,
    "no-ea": CompilerConfig.no_ea,
    "equi": CompilerConfig.equi_escape,
    "conngraph": CompilerConfig.conngraph,
    "pea": CompilerConfig.partial_escape,
    "summaries": _pea_with_summaries,
    "auto": _auto_tier,
}


def _load(path: str):
    with open(path) as handle:
        return compile_source(handle.read())


def _add_cache_flags(parser, default: bool) -> None:
    parser.add_argument("--cache", dest="cache", action="store_true",
                        default=default,
                        help="share compiled graphs across VMs"
                             + (" (default)" if default else ""))
    parser.add_argument("--no-cache", dest="cache", action="store_false",
                        help="disable the compilation cache")
    parser.add_argument("--cache-dir",
                        help="persist the cache under this directory "
                             "(implies --cache)")


def _make_cache(args):
    """A CompilationCache per the --cache/--no-cache/--cache-dir flags,
    or None when caching is off."""
    if getattr(args, "cache_dir", None):
        return CompilationCache(args.cache_dir)
    if getattr(args, "cache", False):
        return CompilationCache()
    return None


def cmd_run(args) -> int:
    program = _load(args.file)
    call_args = [int(a) for a in args.args]
    vm = None
    gc_stats = None
    if args.config == "interp":
        interp = Interpreter(program)
        result = interp.call(args.entry, *call_args)
        stats = interp.heap.stats
        gc_stats = interp.heap.gc.stats
        cycles = ""
    else:
        cache = _make_cache(args)
        config_kwargs = {}
        if getattr(args, "service", None):
            config_kwargs["compile_service"] = args.service
        if getattr(args, "deoptless", False):
            config_kwargs["deoptless"] = True
        prog = api.compile(program,
                           config=CONFIGS[args.config](**config_kwargs),
                           cache=cache)
        prog.warm_up(args.entry, *call_args, calls=args.warmup)
        vm = prog.vm
        heap_before = prog.heap_stats()
        gc_before = prog.gc_stats()
        cycles_before = vm.cycles_snapshot()
        result = prog.run(args.entry, *call_args)
        stats = prog.heap_stats().delta(heap_before)
        gc_stats = prog.gc_stats().delta(gc_before)
        cycles = f"  cycles={vm.cycles_snapshot() - cycles_before:,.0f}"
        if vm.osr_entries:
            cycles += f"  osr={vm.osr_entries}"
        if cache is not None:
            s = cache.stats
            cycles += f"  cache={s.hits}h/{s.misses}m"
    print(f"result: {result}")
    print(f"allocations={stats.allocations}  "
          f"bytes={stats.allocated_bytes}  "
          f"monitors={stats.monitor_enters}/{stats.monitor_exits}"
          f"{cycles}")
    if getattr(args, "gc_stats", False) and gc_stats is not None:
        print(f"gc: minor_collections={gc_stats.minor_collections}  "
              f"pause_cycles={gc_stats.pause_cycles}  "
              f"promoted_kb={gc_stats.promoted_bytes / 1024:.1f}  "
              f"copied_kb={gc_stats.copied_bytes / 1024:.1f}")
    if getattr(args, "profile", False) and vm is not None:
        d = vm.deoptless.snapshot()
        print(f"profile: deopts={vm.exec_stats.deopts}  "
              f"invalidations={vm.invalidations}  "
              f"interpreter_steps={vm.exec_stats.interpreter_steps}")
        print(f"deoptless: continuation_compiles="
              f"{d['continuation_compiles']}  "
              f"dispatches={d['dispatches']}  "
              f"dispatch_misses={d['dispatch_misses']}  "
              f"retirements={d['retirements']}")
    return 0


def cmd_compile(args) -> int:
    program = _load(args.file)
    method = program.method(args.method)
    config = CONFIGS.get(args.config, CompilerConfig.partial_escape)
    if config is None:
        print("cannot compile with --config interp", file=sys.stderr)
        return 2
    compiler = Compiler(program, config())
    result = compiler.compile(method)
    print(f"{args.method}: {result.node_count} IR nodes")
    if args.timings:
        for timing in compiler.last_timings:
            marker = "*" if timing.changed else " "
            print(f"  {marker} {timing.phase:<28} "
                  f"{timing.seconds * 1000:8.2f} ms")
    ea = result.ea_result
    print(f"escape analysis: virtualized={ea.virtualized_allocations} "
          f"materializations={ea.materializations} "
          f"monitor_pairs_removed={ea.removed_monitor_pairs}")
    if args.dump_ir:
        print(dump_graph(result.graph, include_floating=False))
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(to_dot(result.graph))
        print(f"wrote {args.dot}")
    if args.html:
        from .ir.htmlviz import write_html
        write_html(result.graph, args.html)
        print(f"wrote {args.html}")
    return 0


def cmd_disasm(args) -> int:
    print(disassemble_program(_load(args.file)))
    return 0


def _load_any(path: str):
    """Load a program from a source file or a ``.jasm`` assembly file."""
    with open(path) as handle:
        text = handle.read()
    if path.endswith(".jasm"):
        from .bytecode.asmtext import assemble
        return assemble(text, verify=True)
    return compile_source(text)


def _analysis_targets(paths) -> list:
    """Expand files/directories into analyzable files (sorted;
    directories searched recursively for .mj and .jasm)."""
    import glob
    import os
    files = []
    for path in paths:
        if os.path.isdir(path):
            for ext in ("mj", "jasm"):
                files.extend(sorted(glob.glob(
                    os.path.join(path, "**", f"*.{ext}"),
                    recursive=True)))
        else:
            files.append(path)
    return files


def _run_analysis(args, lint_only: bool) -> int:
    """Shared driver for ``analyze``/``lint``.

    Exit contract: 0 clean, 1 findings, 2 error.  The escape-site
    attribution of ``analyze`` is informational — only lint findings
    make the exit code 1.
    """
    import json

    from .analysis.diagnostics import analyze_program, lint_program

    files = _analysis_targets(args.paths)
    if not files:
        print("no analyzable files found", file=sys.stderr)
        return 2
    reports = {}
    finding_count = 0
    for path in files:
        try:
            program = _load_any(path)
            if lint_only:
                findings = lint_program(program)
                payload = {"findings": [f.to_dict() for f in findings]}
                text = "\n".join(f.format() for f in findings) \
                    if findings else "clean"
            else:
                report = analyze_program(program)
                findings = report.findings
                payload = report.to_dict()
                text = report.format()
        except Exception as exc:  # noqa: BLE001 - report, exit 2
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
        finding_count += len(findings)
        reports[path] = payload
        if not args.json:
            print(f"== {path}")
            print(text)
    if args.json:
        print(json.dumps(reports, indent=2, sort_keys=True))
    return 1 if finding_count else 0


def cmd_analyze(args) -> int:
    return _run_analysis(args, lint_only=False)


def cmd_lint(args) -> int:
    return _run_analysis(args, lint_only=True)


def cmd_fuzz(args) -> int:
    import os
    if args.verify_ir:
        os.environ["REPRO_VERIFY_IR"] = "1"
    from .verify.fuzz import fuzz
    cache = _make_cache(args)
    service = None
    service_address = None
    if args.service == "auto":
        # Own a service for this run: every differential engine routes
        # through it, exercising transport + service-side compilation.
        from .jit.server import CompileService, format_address
        service = CompileService(workers=2)
        service.start(("127.0.0.1", 0))
        service_address = format_address(service.address)
        print(f"compile service started on {service_address}")
    elif args.service:
        service_address = args.service
    try:
        report = fuzz(programs=args.programs, seed=args.seed,
                      corpus_dir=args.corpus_dir,
                      shrink=not args.no_shrink, log=print,
                      cache=cache, service_address=service_address)
    finally:
        if service is not None:
            stats = service.stats.snapshot()
            print(f"service: {stats['requests']} requests "
                  f"({stats['continuation_requests']} continuations), "
                  f"{stats['compiles']} compiles, "
                  f"{stats['cache_hits']} cache hits, "
                  f"{stats['dedup_joined']} deduped")
            service.shutdown()
    print(f"ran {report.programs_run} programs, "
          f"{len(report.coverage)} coverage keys "
          f"({report.coverage_adds} coverage-adding programs), "
          f"{len(report.failures)} failure(s)")
    if cache is not None:
        s = cache.stats
        print(f"cache: {s.hits} hits, {s.misses} misses, "
              f"{s.validation_failures} stale, {s.evictions} evicted, "
              f"{s.continuation_stores} continuation stores")
    for failure in report.failures:
        reproducer = failure.reproducer()
        print(f"  [{failure.category}] {failure.detail} "
              f"({reproducer.statement_count()} statements)")
    return 1 if report.failures else 0


def cmd_cache(args) -> int:
    from .jit.cache import clear_disk, disk_stats
    cache_dir = args.cache_dir or default_cache_dir()
    if args.action == "stats":
        summary = disk_stats(cache_dir)
        print(f"cache directory: {cache_dir}")
        print(f"graphs:          {summary['graph_files']} files, "
              f"{summary['graph_entries']} variants "
              f"({summary['continuation_entries']} continuations), "
              f"{summary['graph_bytes']:,} bytes")
        print(f"harness records: {summary['harness_files']} entries, "
              f"{summary['harness_bytes']:,} bytes")
    else:
        removed = clear_disk(cache_dir)
        print(f"removed {removed} cached file(s) from {cache_dir}")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    # argparse.REMAINDER refuses to swallow leading option-style tokens
    # (bpo-17050), so `repro table1 --suite ...` never reaches the
    # delegate; hand the benchsuite subcommands their argv directly.
    if argv and argv[0] in ("table1", "comparison", "jitdiff"):
        import importlib
        module = importlib.import_module(f"repro.benchsuite.{argv[0]}")
        result = module.main(argv[1:])
        return int(result or 0)
    if argv and argv[0] == "serve":
        from .jit.server import main as serve_main
        return int(serve_main(argv[1:]) or 0)
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Partial Escape Analysis reproduction toolchain")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="execute a program on a chosen engine")
    run_parser.add_argument("file")
    run_parser.add_argument("--entry", default="Main.main")
    run_parser.add_argument("--args", nargs="*", default=[])
    run_parser.add_argument("--config", choices=sorted(CONFIGS),
                            default="pea")
    run_parser.add_argument("--warmup", type=int, default=30)
    run_parser.add_argument("--deoptless", action="store_true",
                            help="dispatch deopts into specialized "
                                 "continuations instead of bridging "
                                 "through the interpreter")
    run_parser.add_argument("--profile", action="store_true",
                            help="print deopt/continuation/dispatch "
                                 "counters after the measured call")
    run_parser.add_argument("--gc-stats", action="store_true",
                            help="print simulated-collector counters "
                                 "(minor collections, pause cycles, "
                                 "promoted bytes) for the measured "
                                 "call")
    run_parser.add_argument("--service", metavar="HOST:PORT",
                            help="tier up through this compile service "
                                 "(background compilation; falls back "
                                 "in-process if unreachable)")
    _add_cache_flags(run_parser, default=False)
    run_parser.set_defaults(func=cmd_run)

    compile_parser = subparsers.add_parser(
        "compile", help="compile one method and report/dump the IR")
    compile_parser.add_argument("file")
    compile_parser.add_argument("--method", required=True)
    compile_parser.add_argument("--config", choices=["no-ea", "equi",
                                                     "pea"],
                                default="pea")
    compile_parser.add_argument("--dump-ir", action="store_true")
    compile_parser.add_argument("--timings", action="store_true",
                                help="print per-phase compile times "
                                     "(* = phase changed the graph)")
    compile_parser.add_argument("--dot")
    compile_parser.add_argument("--html",
                                help="write a standalone HTML/SVG "
                                     "visualization of the graph")
    compile_parser.set_defaults(func=cmd_compile)

    disasm_parser = subparsers.add_parser(
        "disasm", help="disassemble a program's bytecode")
    disasm_parser.add_argument("file")
    disasm_parser.set_defaults(func=cmd_disasm)

    analyze_parser = subparsers.add_parser(
        "analyze", help="escape-site attribution report + IR lints "
                        "(exit 0 clean / 1 findings / 2 error)")
    analyze_parser.add_argument("paths", nargs="+",
                                help="source/.jasm files or directories")
    analyze_parser.add_argument("--json", action="store_true",
                                help="machine-readable output")
    analyze_parser.set_defaults(func=cmd_analyze)

    lint_parser = subparsers.add_parser(
        "lint", help="IR lint passes only "
                     "(exit 0 clean / 1 findings / 2 error)")
    lint_parser.add_argument("paths", nargs="+",
                             help="source/.jasm files or directories")
    lint_parser.add_argument("--json", action="store_true",
                             help="machine-readable output")
    lint_parser.set_defaults(func=cmd_lint)

    fuzz_parser = subparsers.add_parser(
        "fuzz", help="coverage-guided differential fuzzing "
                     "(interpreter vs compiled backends, summaries, "
                     "codegen, deoptless)")
    fuzz_parser.add_argument("--programs", type=int, default=200)
    fuzz_parser.add_argument("--seed", type=int, default=1234)
    fuzz_parser.add_argument("--corpus-dir",
                             help="write shrunk reproducers "
                                  "(.jasm + .json) here")
    fuzz_parser.add_argument("--no-shrink", action="store_true",
                             help="skip delta-debugging of failures")
    fuzz_parser.add_argument("--verify-ir", action="store_true",
                             default=True,
                             help="run the full IR verifier after "
                                  "every phase (default on)")
    fuzz_parser.add_argument("--service", nargs="?", const="auto",
                             metavar="HOST:PORT",
                             help="route all differential engines "
                                  "through one shared compile service "
                                  "(started in-process when no "
                                  "address is given)")
    _add_cache_flags(fuzz_parser, default=True)
    fuzz_parser.set_defaults(func=cmd_fuzz)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the on-disk compilation cache")
    cache_parser.add_argument("action", choices=["stats", "clear"])
    cache_parser.add_argument("--cache-dir",
                              help="cache directory (default: "
                                   "$REPRO_CACHE_DIR or "
                                   "~/.cache/repro-pea)")
    cache_parser.set_defaults(func=cmd_cache)

    # Registered for --help only; main() intercepts "serve" above and
    # hands its argv to repro.jit.server.main directly.
    serve_parser = subparsers.add_parser(
        "serve", help="run a shared compile service "
                      "(see `repro serve --help`)",
        add_help=False)
    serve_parser.add_argument("rest", nargs=argparse.REMAINDER)

    for name, module in (("table1", "table1"),
                         ("comparison", "comparison"),
                         ("jitdiff", "jitdiff")):
        bench_parser = subparsers.add_parser(
            name, help=f"run the benchsuite {name} report",
            add_help=False)
        bench_parser.add_argument("rest", nargs=argparse.REMAINDER)

        def delegate(args, _module=module):
            import importlib
            mod = importlib.import_module(
                f"repro.benchsuite.{_module}")
            return int(mod.main(args.rest) or 0)

        bench_parser.set_defaults(func=delegate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
